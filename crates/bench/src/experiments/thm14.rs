//! E-1.4 — Theorem 1.4: the arboricity-2 lower-bound construction and the
//! locality wall, plus the Figure 1 reproduction.

use crate::report::{check, f2, Table};
use crate::Scale;
use arbodom_graph::generators;
use arbodom_lowerbound::construction::{build_h, build_h_paper};
use arbodom_lowerbound::hopcroft_karp::{bipartition, hopcroft_karp};
use arbodom_lowerbound::kmw_like::kmw_like;
use arbodom_lowerbound::locality::locality_curve;

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut structure = Table::new(
        "E-1.4a",
        "Section 5 construction H(G): structural verification (Fig. 1 = K4 row)",
        &[
            "base G",
            "copies",
            "n(H)",
            "m(H)",
            "Δ(H)",
            "out-deg ≤ 2",
            "hub deg = c",
            "eq(2) size",
            "Δ²·MVC+n",
            "ok",
        ],
    );
    let mut rng = crate::seeded_rng(1014);

    let bases: Vec<(String, arbodom_graph::Graph)> = vec![
        ("K4 (Fig. 1)".into(), generators::complete(4)),
        ("C8".into(), generators::cycle(8)),
        ("kmw-like(2,3)".into(), kmw_like(2, 3, &mut rng).graph),
        ("kmw-like(3,2)".into(), kmw_like(3, 2, &mut rng).graph),
    ];
    for (name, g) in &bases {
        let h = build_h_paper(g);
        let verified = h.verify_structure().is_ok();
        let orientation = h.arboricity2_orientation();
        // Exact MVC where the base is bipartite; otherwise greedy VC from
        // exact MDS machinery is unnecessary — K4 is tiny, use brute force
        // via matching bound only for bipartite bases.
        let (eq2_size, bound, eq2_ok) = match bipartition(g) {
            Some(side) => {
                let mvc = hopcroft_karp(g, &side);
                let ds = h.hubs_plus_cover(&mvc.min_vertex_cover);
                let ok = arbodom_core::verify::is_dominating_set(&h.graph, &ds);
                let size = ds.iter().filter(|&&b| b).count();
                (size, h.copies * mvc.size + g.n(), ok)
            }
            None => {
                // Non-bipartite base (K4): use the trivial VC = all nodes −
                // one; for K4 the MVC is 3.
                let cover: Vec<bool> = (0..g.n()).map(|v| v != 0).collect();
                let ds = h.hubs_plus_cover(&cover);
                let ok = arbodom_core::verify::is_dominating_set(&h.graph, &ds);
                let size = ds.iter().filter(|&&b| b).count();
                (size, h.copies * (g.n() - 1) + g.n(), ok)
            }
        };
        let hub_ok = (0..g.n()).all(|v| {
            h.graph
                .degree(h.hub_node(arbodom_graph::NodeId::from_index(v)))
                == h.copies
        });
        structure.row(vec![
            name.clone(),
            h.copies.to_string(),
            h.graph.n().to_string(),
            h.graph.m().to_string(),
            h.graph.max_degree().to_string(),
            check(orientation.max_out_degree() <= 2),
            check(hub_ok),
            eq2_size.to_string(),
            bound.to_string(),
            check(verified && eq2_ok && eq2_size <= bound),
        ]);
    }
    structure.note(
        "'out-deg ≤ 2' is the explicit arboricity-2 witness from the proof; \
         'eq(2)' exhibits the dominating set T ∪ Δ²·(vertex cover) whose size \
         realizes OPT_H ≤ Δ²·OPT_MVC + n (vertex covers exact via Kőnig on \
         bipartite bases).",
    );

    // Locality wall.
    let mut wall = Table::new(
        "E-1.4b",
        "locality wall: certified ratio of r-round algorithms on H",
        &["r (rounds)", "|DS|", "ratio", "monotone ok"],
    );
    let (levels, beta, copies) = match scale {
        Scale::Quick => (2usize, 3usize, 3usize),
        Scale::Full => (3, 3, 9),
    };
    let base = kmw_like(levels, beta, &mut rng).graph;
    let h = build_h(&base, copies);
    let max_r = scale.pick(18, 30);
    let curve = locality_curve(&h.graph, 0.3, max_r);
    let converged = curve.last().expect("nonempty").ratio;
    for p in curve.iter().step_by(3) {
        wall.row(vec![
            p.rounds.to_string(),
            p.size.to_string(),
            f2(p.ratio),
            check(p.ratio >= converged * 0.999),
        ]);
    }
    let first = curve.first().expect("nonempty").ratio;
    wall.note(format!(
        "H over kmw-like({levels},{beta}) with {copies} copies: n(H) = {}, Δ(H) = {}. \
         Ratio at r = 0 is {:.1}× the converged ratio — the Ω(log Δ/log log Δ) wall \
         of Theorem 1.4 in measured form.",
        h.graph.n(),
        h.graph.max_degree(),
        first / converged
    ));
    let wall_ok = first > 1.5 * converged;
    wall.row(vec![
        "—".into(),
        "—".into(),
        format!("wall {:.1}x", first / converged),
        check(wall_ok),
    ]);
    vec![structure, wall]
}
