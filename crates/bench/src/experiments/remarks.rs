//! E-4.4/4.5 — Remarks 4.4 and 4.5: what knowing Δ and α is worth.

use crate::report::{check, f2, f3, Table};
use crate::Scale;
use arbodom_core::{unknown_alpha, unknown_delta, verify, weighted};
use arbodom_graph::{generators, weights::WeightModel};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(1_500, 25_000);
    let eps = 0.2;
    let mut table = Table::new(
        "E-4.4/4.5",
        format!("knowledge ablation on forest unions, n = {n}, ε = {eps}"),
        &[
            "α",
            "algorithm",
            "knows",
            "iters",
            "w(DS)",
            "cert ratio",
            "bound",
            "ok",
        ],
    );
    let mut rng = crate::seeded_rng(1044);
    for &alpha in &[2usize, 4] {
        let g = generators::forest_union(n, alpha, &mut rng);
        let g = WeightModel::Uniform { lo: 1, hi: 50 }.assign(&g, &mut rng);

        let full = weighted::solve(&g, &weighted::Config::new(alpha, eps).expect("valid"))
            .expect("solves");
        let bound_full = (2 * alpha + 1) as f64 * (1.0 + eps);
        let r_full = full.certified_ratio().unwrap();
        table.row(vec![
            alpha.to_string(),
            "Thm 1.1".into(),
            "Δ, α".into(),
            full.iterations.to_string(),
            full.weight.to_string(),
            f3(r_full),
            f2(bound_full),
            check(
                verify::is_dominating_set(&g, &full.in_ds) && r_full <= bound_full * (1.0 + 1e-9),
            ),
        ]);

        let ud = unknown_delta::solve(&g, &unknown_delta::Config::new(alpha, eps).expect("valid"))
            .expect("solves");
        let r_ud = ud.certified_ratio().unwrap();
        table.row(vec![
            alpha.to_string(),
            "Rem 4.4".into(),
            "α only".into(),
            ud.iterations.to_string(),
            ud.weight.to_string(),
            f3(r_ud),
            f2(bound_full),
            check(verify::is_dominating_set(&g, &ud.in_ds) && r_ud <= bound_full * (1.0 + 1e-9)),
        ]);

        let ua = unknown_alpha::solve(&g, &unknown_alpha::Config::new(eps).expect("valid"))
            .expect("solves");
        let r_ua = ua.certified_ratio().unwrap();
        // Remark 4.5 guarantee with our (2+ε)·2α peeling: see module docs.
        let bound_ua = (2.0 * (2.0 + eps) * 2.0 * alpha as f64 + 1.0) * (1.0 + eps);
        table.row(vec![
            alpha.to_string(),
            "Rem 4.5".into(),
            "n only".into(),
            ua.iterations.to_string(),
            ua.weight.to_string(),
            f3(r_ua),
            f2(bound_ua),
            check(verify::is_dominating_set(&g, &ua.in_ds) && r_ua <= bound_ua * (1.0 + 1e-9)),
        ]);
    }
    table.note(
        "Rem 4.4 matches Thm 1.1's guarantee without knowing Δ at comparable \
         iteration counts; Rem 4.5 (α unknown) pays the (2+ε)-orientation factor in \
         its bound and the peeling rounds in its iterations, as the paper predicts \
         (its measured quality stays close in practice).",
    );
    vec![table]
}
