//! CI gate: validates a freshly produced `BENCH_sim.json` against the
//! committed full-scale baseline. See `arbodom_bench::ratchet` for what
//! is (and deliberately is not) gated.
//!
//! ```text
//! bench_ratchet --current BENCH_sim.json --baseline baseline.json
//! ```
//!
//! Prints the markdown summary to stdout (CI appends it to
//! `$GITHUB_STEP_SUMMARY`), violations to stderr, and exits nonzero on
//! any violation.

use arbodom_bench::ratchet;
use arbodom_scenarios::json::JsonValue;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut current = None;
    let mut baseline = None;
    let mut it = args.iter().map(String::as_str);
    while let Some(arg) = it.next() {
        match arg {
            "--current" => current = it.next(),
            "--baseline" => baseline = it.next(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_ratchet --current PATH --baseline PATH");
                std::process::exit(2);
            }
        }
    }
    let (Some(current), Some(baseline)) = (current, baseline) else {
        eprintln!("usage: bench_ratchet --current PATH --baseline PATH");
        std::process::exit(2);
    };
    let read = |label: &str, path: &str| -> JsonValue {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {label} artifact {path}: {e}");
            std::process::exit(2);
        });
        JsonValue::parse(&text).unwrap_or_else(|e| {
            eprintln!("{label} artifact {path} is not valid JSON: {e}");
            std::process::exit(1);
        })
    };
    let report = ratchet::check(&read("current", current), &read("baseline", baseline));
    println!("{}", report.summary_md);
    if !report.ok() {
        for v in &report.violations {
            eprintln!("ratchet violation: {v}");
        }
        std::process::exit(1);
    }
}
