//! CI gate: validates a freshly produced bench artifact against the
//! committed full-scale baseline. See `arbodom_bench::ratchet` for what
//! is (and deliberately is not) gated.
//!
//! ```text
//! bench_ratchet [--kind sim|scenarios|service] --current CUR.json --baseline BASE.json
//! ```
//!
//! `--kind` picks the structure gate (default `sim` for
//! `BENCH_sim.json`; `scenarios` for `BENCH_scenarios.json`; `service`
//! for `BENCH_service.json`). Prints the markdown summary to stdout (CI
//! appends it to `$GITHUB_STEP_SUMMARY`), violations to stderr, and
//! exits nonzero on any violation.

use arbodom_bench::ratchet;
use arbodom_scenarios::json::JsonValue;

fn usage() -> ! {
    eprintln!("usage: bench_ratchet [--kind sim|scenarios|service] --current PATH --baseline PATH");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kind = "sim";
    let mut current = None;
    let mut baseline = None;
    let mut it = args.iter().map(String::as_str);
    while let Some(arg) = it.next() {
        match arg {
            "--kind" => match it.next() {
                Some(k @ ("sim" | "scenarios" | "service")) => kind = k,
                Some(other) => {
                    eprintln!("unknown artifact kind: {other}");
                    usage();
                }
                None => usage(),
            },
            "--current" => current = it.next(),
            "--baseline" => baseline = it.next(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    let (Some(current), Some(baseline)) = (current, baseline) else {
        usage();
    };
    let read = |label: &str, path: &str| -> JsonValue {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {label} artifact {path}: {e}");
            std::process::exit(2);
        });
        JsonValue::parse(&text).unwrap_or_else(|e| {
            eprintln!("{label} artifact {path} is not valid JSON: {e}");
            std::process::exit(1);
        })
    };
    let check = match kind {
        "scenarios" => ratchet::check_scenarios,
        "service" => ratchet::check_service,
        _ => ratchet::check,
    };
    let report = check(&read("current", current), &read("baseline", baseline));
    println!("{}", report.summary_md);
    if !report.ok() {
        for v in &report.violations {
            eprintln!("ratchet violation: {v}");
        }
        std::process::exit(1);
    }
}
