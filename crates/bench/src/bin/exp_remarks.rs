//! Regenerates experiment tables for `remarks`; see DESIGN.md.
fn main() {
    let scale = arbodom_bench::Scale::from_env();
    for table in arbodom_bench::experiments::remarks::run(scale) {
        println!("{table}");
    }
}
