//! Regenerates experiment tables for `remarks`; see DESIGN.md.
fn main() {
    arbodom_bench::experiment_main(arbodom_bench::experiments::remarks::run);
}
