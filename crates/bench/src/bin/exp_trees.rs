//! Regenerates experiment tables for `trees`; see DESIGN.md.
fn main() {
    let scale = arbodom_bench::Scale::from_env();
    for table in arbodom_bench::experiments::trees::run(scale) {
        println!("{table}");
    }
}
