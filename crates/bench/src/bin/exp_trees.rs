//! Regenerates experiment tables for `trees`; see DESIGN.md.
fn main() {
    arbodom_bench::experiment_main(arbodom_bench::experiments::trees::run);
}
