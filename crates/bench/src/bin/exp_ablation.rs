//! Regenerates experiment tables for `ablation`; see DESIGN.md.
fn main() {
    arbodom_bench::experiment_main(arbodom_bench::experiments::ablation::run);
}
