//! Regenerates experiment tables for `ablation`; see DESIGN.md.
fn main() {
    let scale = arbodom_bench::Scale::from_env();
    for table in arbodom_bench::experiments::ablation::run(scale) {
        println!("{table}");
    }
}
