//! Regenerates experiment tables for `thm11`; see DESIGN.md.
fn main() {
    arbodom_bench::experiment_main(arbodom_bench::experiments::thm11::run);
}
