//! Regenerates experiment tables for `scaling`; see DESIGN.md.
fn main() {
    arbodom_bench::experiment_main(arbodom_bench::experiments::scaling::run);
}
