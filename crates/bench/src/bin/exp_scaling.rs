//! Regenerates experiment tables for `scaling`; see DESIGN.md.
fn main() {
    let scale = arbodom_bench::Scale::from_env();
    for table in arbodom_bench::experiments::scaling::run(scale) {
        println!("{table}");
    }
}
