//! Regenerates experiment tables for `thm12`; see DESIGN.md.
fn main() {
    arbodom_bench::experiment_main(arbodom_bench::experiments::thm12::run);
}
