//! Regenerates experiment tables for `thm12`; see DESIGN.md.
fn main() {
    let scale = arbodom_bench::Scale::from_env();
    for table in arbodom_bench::experiments::thm12::run(scale) {
        println!("{table}");
    }
}
