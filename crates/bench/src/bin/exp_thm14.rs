//! Regenerates experiment tables for `thm14`; see DESIGN.md.
fn main() {
    arbodom_bench::experiment_main(arbodom_bench::experiments::thm14::run);
}
