//! Regenerates experiment tables for `thm14`; see DESIGN.md.
fn main() {
    let scale = arbodom_bench::Scale::from_env();
    for table in arbodom_bench::experiments::thm14::run(scale) {
        println!("{table}");
    }
}
