//! Regenerates experiment tables for `certificates`; see DESIGN.md.
fn main() {
    let scale = arbodom_bench::Scale::from_env();
    for table in arbodom_bench::experiments::certificates::run(scale) {
        println!("{table}");
    }
}
