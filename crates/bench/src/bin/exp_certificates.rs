//! Regenerates experiment tables for `certificates`; see DESIGN.md.
fn main() {
    arbodom_bench::experiment_main(arbodom_bench::experiments::certificates::run);
}
