//! Regenerates experiment tables for `thm13`; see DESIGN.md.
fn main() {
    arbodom_bench::experiment_main(arbodom_bench::experiments::thm13::run);
}
