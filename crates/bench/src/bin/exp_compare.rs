//! Regenerates experiment tables for `compare`; see DESIGN.md.
fn main() {
    let scale = arbodom_bench::Scale::from_env();
    for table in arbodom_bench::experiments::compare::run(scale) {
        println!("{table}");
    }
}
