//! Regenerates experiment tables for `compare`; see DESIGN.md.
fn main() {
    arbodom_bench::experiment_main(arbodom_bench::experiments::compare::run);
}
