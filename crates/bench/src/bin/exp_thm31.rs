//! Regenerates experiment tables for `thm31`; see DESIGN.md.
fn main() {
    arbodom_bench::experiment_main(arbodom_bench::experiments::thm31::run);
}
