//! Regenerates experiment tables for `thm31`; see DESIGN.md.
fn main() {
    let scale = arbodom_bench::Scale::from_env();
    for table in arbodom_bench::experiments::thm31::run(scale) {
        println!("{table}");
    }
}
