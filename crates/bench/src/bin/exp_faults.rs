//! Regenerates experiment tables for `faults`; see DESIGN.md.
fn main() {
    arbodom_bench::experiment_main(arbodom_bench::experiments::faults::run);
}
