//! Regenerates experiment tables for `faults`; see DESIGN.md.
fn main() {
    let scale = arbodom_bench::Scale::from_env();
    for table in arbodom_bench::experiments::faults::run(scale) {
        println!("{table}");
    }
}
