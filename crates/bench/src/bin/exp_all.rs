//! Runs every experiment and prints all tables (EXPERIMENTS.md source).
fn main() {
    let scale = arbodom_bench::Scale::from_env();
    for table in arbodom_bench::experiments::all(scale) {
        println!("{table}");
    }
}
