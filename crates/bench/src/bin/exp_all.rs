//! Runs every experiment and prints all tables (EXPERIMENTS.md source).
fn main() {
    arbodom_bench::experiment_main(arbodom_bench::experiments::all);
}
