//! E-CHURN: incremental repair vs full re-solve over identical churn
//! streams; writes the `BENCH_churn.json` trajectory.
fn main() {
    arbodom_bench::experiment_main(arbodom_bench::experiments::churn::run);
}
