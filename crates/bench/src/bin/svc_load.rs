//! `svc_load` — the `arbodomd` load generator.
//!
//! ```text
//! svc_load [--addr HOST:PORT] [--quick|--full] [--clients N] [--no-write]
//! ```
//!
//! Without `--addr`, boots an in-process daemon on an ephemeral port
//! (still a real TCP loopback instance). Records sustained queries/sec
//! into `BENCH_service.json` at the workspace root and exits nonzero on
//! job errors, quality flags, or zero throughput, so CI gates on a
//! healthy serving layer.

use arbodom_bench::service_load::{render_artifact, run_load, LoadConfig, ARTIFACT_NAME};
use arbodom_bench::Scale;
use arbodom_scenarios::write_workspace_artifact;
use arbodom_service::cliargs::{parsed, usage_error};

fn main() {
    // Collect overrides first, then build the config, so flag meaning
    // does not depend on argument order.
    let mut addr: Option<String> = None;
    let mut scale = Scale::from_env();
    let mut clients: Option<usize> = None;
    let mut write = true;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    while let Some(arg) = it.next() {
        match arg {
            "--addr" => {
                addr = Some(
                    it.next()
                        .unwrap_or_else(|| usage_error("--addr needs a value"))
                        .to_string(),
                );
            }
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--clients" => clients = Some(parsed(it.next(), "--clients")),
            "--no-write" => write = false,
            "--help" | "help" => {
                eprintln!(
                    "USAGE: svc_load [--addr HOST:PORT] [--quick|--full] [--clients N] [--no-write]"
                );
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown option: {other}")),
        }
    }
    let mut cfg = LoadConfig::for_scale(scale);
    cfg.addr = addr;
    if let Some(clients) = clients {
        cfg.clients = clients.max(1);
    }
    println!(
        "svc_load: {} clients × {} batches × {} jobs against {}",
        cfg.clients,
        cfg.batches_per_client,
        cfg.jobs_per_batch,
        cfg.addr.as_deref().unwrap_or("an in-process daemon"),
    );
    let outcome = run_load(&cfg).unwrap_or_else(|e| {
        eprintln!("svc_load: {e}");
        std::process::exit(1);
    });
    println!(
        "svc_load: {} jobs in {:.2}s — {:.1} queries/sec ({} errors, {} flagged; cache {} hits / {} misses / {} evictions)",
        outcome.jobs,
        outcome.wall_secs,
        outcome.queries_per_sec,
        outcome.job_errors,
        outcome.flagged,
        outcome.cache.hits,
        outcome.cache.misses,
        outcome.cache.evictions,
    );
    if write {
        let json = render_artifact(&outcome, &cfg);
        match write_workspace_artifact(ARTIFACT_NAME, &json) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("svc_load: could not write artifact: {e}");
                std::process::exit(1);
            }
        }
    }
    if outcome.job_errors > 0 || outcome.flagged > 0 || outcome.queries_per_sec <= 0.0 {
        eprintln!("svc_load: unhealthy run");
        std::process::exit(1);
    }
}
