//! `svc_load` — the `arbodomd` load generator.
//!
//! ```text
//! svc_load [--addr HOST:PORT] [--quick|--full] [--clients N] [--no-write]
//! ```
//!
//! Without `--addr`, boots an in-process daemon on an ephemeral port
//! (still a real TCP loopback instance). Records the sustained
//! queries/sec ladder plus the admission-control probe (pipelined
//! overload burst, retrying flood, scraped queue-wait quantiles) into
//! `BENCH_service.json` (schema v4) at the workspace root and exits
//! nonzero on job errors, quality flags, zero throughput, or an
//! unhealthy admission probe — no shed, lost flood submits, or any
//! transport error — so CI gates on a healthy serving layer.

use arbodom_bench::service_load::{render_artifact, run_load, LoadConfig, ARTIFACT_NAME};
use arbodom_bench::Scale;
use arbodom_scenarios::write_workspace_artifact;
use arbodom_service::cliargs::{parsed, usage_error};

fn main() {
    // Collect overrides first, then build the config, so flag meaning
    // does not depend on argument order.
    let mut addr: Option<String> = None;
    let mut scale = Scale::from_env();
    let mut clients: Option<usize> = None;
    let mut write = true;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    while let Some(arg) = it.next() {
        match arg {
            "--addr" => {
                addr = Some(
                    it.next()
                        .unwrap_or_else(|| usage_error("--addr needs a value"))
                        .to_string(),
                );
            }
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--clients" => clients = Some(parsed(it.next(), "--clients")),
            "--no-write" => write = false,
            "--help" | "help" => {
                eprintln!(
                    "USAGE: svc_load [--addr HOST:PORT] [--quick|--full] [--clients N] [--no-write]"
                );
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown option: {other}")),
        }
    }
    let mut cfg = LoadConfig::for_scale(scale);
    cfg.addr = addr;
    if let Some(clients) = clients {
        cfg.clients = clients.max(1);
    }
    println!(
        "svc_load: {} clients × {} batches × {} jobs against {}",
        cfg.clients,
        cfg.batches_per_client,
        cfg.jobs_per_batch,
        cfg.addr.as_deref().unwrap_or("an in-process daemon"),
    );
    let outcome = run_load(&cfg).unwrap_or_else(|e| {
        eprintln!("svc_load: {e}");
        std::process::exit(1);
    });
    for row in &outcome.sustained {
        println!(
            "svc_load: sustained {} client(s): {} jobs in {:.2}s — {:.1} queries/sec",
            row.clients, row.jobs, row.wall_secs, row.queries_per_sec,
        );
    }
    println!(
        "svc_load: {} jobs in {:.2}s — {:.1} queries/sec ({} errors, {} flagged; cache {} hits / {} misses / {} evictions)",
        outcome.jobs,
        outcome.wall_secs,
        outcome.queries_per_sec,
        outcome.job_errors,
        outcome.flagged,
        outcome.cache.hits,
        outcome.cache.misses,
        outcome.cache.evictions,
    );
    let adm = &outcome.admission;
    println!(
        "svc_load: admission probe — burst {} accepted / {} shed of {}, flood {}/{} landed, \
         queue wait p50<={:.2}ms p99<={:.2}ms over {} jobs",
        adm.accepted,
        adm.shed,
        adm.pipelined_requests,
        adm.flood_succeeded,
        adm.flood_submits,
        adm.queue_wait.p50_ms,
        adm.queue_wait.p99_ms,
        adm.queue_wait.count,
    );
    if write {
        let json = render_artifact(&outcome, &cfg);
        match write_workspace_artifact(ARTIFACT_NAME, &json) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("svc_load: could not write artifact: {e}");
                std::process::exit(1);
            }
        }
    }
    let adm_unhealthy = adm.errors > 0
        || adm.shed == 0
        || adm.accepted == 0
        || adm.flood_succeeded != adm.flood_submits
        || adm.job_errors_total > 0.0;
    if outcome.job_errors > 0 || outcome.flagged > 0 || outcome.queries_per_sec <= 0.0 {
        eprintln!("svc_load: unhealthy run");
        std::process::exit(1);
    }
    if adm_unhealthy {
        eprintln!("svc_load: unhealthy admission probe");
        std::process::exit(1);
    }
}
