//! Job execution: resolve a [`GraphSource`] to a (cached) instance, run
//! the requested algorithm through the thread-parallel CONGEST runner,
//! and account the result with the scenario engine's quality machinery.
//!
//! Everything here is deterministic: instances are rebuilt from seeds
//! (or shipped inline), algorithm runs are seeded, and the quality
//! accounting is pure — so a job's [`JobResult`] is a function of its
//! [`JobSpec`] and the server's scale, independent of worker count,
//! scheduling order, and cache state. The cache changes *when* a result
//! is computed, never *what* it is.

use std::sync::{Arc, Mutex};

use arbodom_congest::{LossModel, MeterMode, RunOptions, SimObs};
use arbodom_core::{verify, DsResult};
use arbodom_graph::digest::edge_digest;
use arbodom_graph::weights::WeightModel;
use arbodom_graph::{orientation, GraphBuilder, NodeId};
use arbodom_obs::Stopwatch;
use arbodom_scenarios::runner::{cell_instance, cell_seed};
use arbodom_scenarios::spec::Built;
use arbodom_scenarios::{find, quality, Algorithm, Scale, ScenarioSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::{CachedGraph, GraphCache};
use crate::obs::ServiceObs;
use crate::protocol::{encode_payload, GraphSource, JobResult, JobSpec};
use crate::session::{Session, SessionTable};

/// The algorithm ad-hoc jobs run when the spec does not name one:
/// Theorem 1.1 with ε = 0.2.
pub const DEFAULT_ALGORITHM: Algorithm = Algorithm::Weighted { eps: 0.2 };

/// Hard cap on nodes per job for wire-supplied sources. A ~10-byte
/// `Generator` frame could otherwise request a multi-gigabyte build —
/// the frame-size limit guards the payload, this guards what the payload
/// *describes*. Registered scenario cells are exempt (their sizes come
/// from the trusted registry).
pub const MAX_JOB_NODES: u32 = 1 << 24;

/// Hard cap on `edges-per-node`-shaped generator parameters (`α`,
/// `m_per_node`, `k`, degeneracy cap, …): bounds the edge count of a
/// generated instance at `MAX_JOB_NODES × MAX_DENSITY_PARAM`.
pub const MAX_DENSITY_PARAM: usize = 512;

/// Everything a worker needs to execute jobs. Cheap to clone per job;
/// deliberately does **not** reference the scheduler, so job closures can
/// never keep the worker pool alive transitively.
#[derive(Clone)]
pub struct ExecContext {
    /// The shared graph cache.
    pub cache: Arc<Mutex<GraphCache>>,
    /// The shared session registry (v2 dynamic-graph state).
    pub sessions: Arc<SessionTable>,
    /// Threads handed to the `run_*_on` simulator entry points per job
    /// (results are identical at any value).
    pub sim_threads: usize,
    /// Scale used to resolve scenario-cell size sweeps.
    pub scale: Scale,
    /// The daemon's always-on request/lifecycle metrics.
    pub obs: ServiceObs,
    /// Simulator phase-timing side channel, threaded into every job's
    /// [`RunOptions`] when the daemon runs with `--sim-obs`. `None`
    /// (the default) keeps the simulator provably instrumentation-free.
    pub sim_obs: Option<SimObs>,
}

/// The cache identity of a source: its wire encoding plus the server
/// scale. Scale participates because a scenario cell's size sweep (and
/// therefore its instance) depends on it. These bytes are stored in the
/// cache and compared on lookup, so the 64-bit [`source_key`] hash can
/// collide without ever serving the wrong graph.
pub fn source_bytes(source: &GraphSource, scale: Scale) -> Vec<u8> {
    let mut bytes = encode_payload(source);
    bytes.extend_from_slice(scale.label().as_bytes());
    bytes
}

/// FNV-1a over [`source_bytes`] — the cache's spec-index key.
pub fn source_key(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Executes one job end to end. Never panics on malformed input: every
/// failure is a job-level error string shipped back in the reply.
///
/// # Errors
///
/// Returns a human-readable message when the source is invalid, the
/// scenario/cell address does not exist, or the simulation fails.
pub fn execute_job(ctx: &ExecContext, spec: &JobSpec) -> Result<JobResult, String> {
    ctx.obs.jobs.inc();
    let outcome = (|| {
        let instance = resolve_instance(ctx, &spec.source)?;
        let run = run_parameters(ctx, spec)?;
        let (result, _) = solve_on(ctx, &instance, &run, spec.return_members)?;
        Ok(result)
    })();
    if outcome.is_err() {
        ctx.obs.job_errors.inc();
    }
    outcome
}

/// Opens a session: resolves and solves the spec like a regular job, then
/// registers the solved instance with the session table so later `Mutate`
/// / `Resolve` / `Release` requests (and `GraphSource::Session` jobs) can
/// address its live state.
///
/// # Errors
///
/// Everything [`execute_job`] can report, plus: the source is itself a
/// session snapshot, the cell is lossy, or the initial solve came back
/// non-dominating — a session's maintained set must start valid.
pub fn open_session(ctx: &ExecContext, spec: &JobSpec) -> Result<(u64, JobResult), String> {
    if matches!(spec.source, GraphSource::Session { .. }) {
        return Err("open: a session cannot be seeded from another session snapshot".into());
    }
    let instance = resolve_instance(ctx, &spec.source)?;
    let run = run_parameters(ctx, spec)?;
    if run.drop_p > 0.0 {
        return Err(
            "open: lossy scenario cells cannot seed a session (the maintained set must start valid)"
                .into(),
        );
    }
    let (result, sol) = solve_on(ctx, &instance, &run, false)?;
    if !result.valid {
        return Err(format!(
            "open: initial solve left {} undominated nodes",
            result.undominated
        ));
    }
    let session = Session::new(
        instance.graph.clone(),
        &sol,
        run.algorithm,
        instance.alpha,
        run.seed,
    );
    Ok((ctx.sessions.insert(session), result))
}

/// The shared solve-and-account core: runs `run` on `instance` and
/// returns both the wire result and the raw solution (sessions keep the
/// latter).
fn solve_on(
    ctx: &ExecContext,
    instance: &CachedGraph,
    run: &RunParameters,
    return_members: bool,
) -> Result<(JobResult, DsResult), String> {
    let g = &instance.graph;
    let opts = RunOptions {
        meter: run.meter,
        loss: (run.drop_p > 0.0).then_some(LossModel {
            drop_probability: run.drop_p,
            seed: run.seed,
        }),
        obs: ctx.sim_obs.clone(),
        ..RunOptions::default()
    };
    let watch = Stopwatch::start();
    let (sol, telemetry) = run
        .algorithm
        .execute(g, instance.alpha, run.seed, &opts, ctx.sim_threads)
        .map_err(|e| format!("algorithm run failed: {e}"))?;
    ctx.obs.solve.observe(watch.elapsed_nanos());
    let undominated = verify::undominated_nodes(g, &sol.in_ds).len();
    let valid = undominated == 0;
    let guarantee = run.algorithm.guarantee(instance.alpha, g.max_degree());
    let account = quality::account(
        g,
        &sol,
        instance.planted.as_deref(),
        guarantee,
        valid,
        run.drop_p > 0.0,
    );
    let members = return_members.then(|| sol.members().iter().map(|v| v.get()).collect());
    let result = JobResult {
        n: g.n() as u64,
        m: g.m() as u64,
        max_degree: g.max_degree() as u64,
        alpha: instance.alpha as u64,
        graph_digest: instance.digest,
        ds_size: sol.size as u64,
        ds_weight: sol.weight,
        valid,
        undominated: undominated as u64,
        reference: account.reference,
        opt_estimate: account.opt_estimate,
        ratio: account.ratio,
        guarantee: account.guarantee,
        within_guarantee: account.within_guarantee,
        flagged: account.flagged,
        rounds: telemetry.rounds as u64,
        round_budget: run.algorithm.round_budget(instance.alpha, g.max_degree()) as u64,
        messages: telemetry.total_messages as u64,
        total_bits: telemetry.total_bits as u64,
        max_message_bits: telemetry.max_message_bits as u64,
        budget_violations: telemetry.budget_violations as u64,
        dropped_messages: telemetry.dropped_messages as u64,
        members,
    };
    Ok((result, sol))
}

/// How one job runs: algorithm, seed, loss, metering.
struct RunParameters {
    algorithm: Algorithm,
    seed: u64,
    drop_p: f64,
    meter: MeterMode,
}

fn run_parameters(ctx: &ExecContext, spec: &JobSpec) -> Result<RunParameters, String> {
    match &spec.source {
        GraphSource::Inline { .. } | GraphSource::Generator { .. } => Ok(RunParameters {
            algorithm: spec.algorithm.unwrap_or(DEFAULT_ALGORITHM),
            seed: spec.seed,
            drop_p: 0.0,
            meter: MeterMode::Measure,
        }),
        GraphSource::ScenarioCell {
            name,
            size_idx,
            weight_idx,
            loss_idx,
            seed_idx,
        } => {
            let scenario = find_scenario(name)?;
            check_cell_bounds(
                &scenario,
                ctx.scale,
                *size_idx,
                *weight_idx,
                *loss_idx,
                *seed_idx,
            )?;
            Ok(RunParameters {
                algorithm: spec.algorithm.unwrap_or(scenario.algorithm),
                seed: cell_seed(
                    &scenario,
                    *size_idx as usize,
                    *weight_idx as usize,
                    *loss_idx as usize,
                    *seed_idx,
                ),
                drop_p: scenario.loss[*loss_idx as usize],
                meter: scenario.meter,
            })
        }
        GraphSource::Session { id } => {
            // Default to the algorithm the session was opened with, so a
            // bare snapshot job reproduces the session's own solve.
            let session = find_session(ctx, *id)?;
            let default = session.lock().expect("session poisoned").algorithm();
            Ok(RunParameters {
                algorithm: spec.algorithm.unwrap_or(default),
                seed: spec.seed,
                drop_p: 0.0,
                meter: MeterMode::Measure,
            })
        }
    }
}

fn find_session(ctx: &ExecContext, id: u64) -> Result<Arc<Mutex<Session>>, String> {
    ctx.sessions.get(id).map_err(|lost| lost.describe(id))
}

fn find_scenario(name: &str) -> Result<ScenarioSpec, String> {
    find(name).ok_or_else(|| format!("unknown scenario `{name}`"))
}

fn check_cell_bounds(
    scenario: &ScenarioSpec,
    scale: Scale,
    size_idx: u32,
    weight_idx: u32,
    loss_idx: u32,
    seed_idx: u64,
) -> Result<(), String> {
    let sizes = scenario.sizes(scale).len();
    let bounds = [
        (size_idx as usize, sizes, "size_idx"),
        (weight_idx as usize, scenario.weights.len(), "weight_idx"),
        (loss_idx as usize, scenario.loss.len(), "loss_idx"),
        (seed_idx as usize, scenario.seeds as usize, "seed_idx"),
    ];
    for (idx, limit, label) in bounds {
        if idx >= limit {
            return Err(format!(
                "{label} {idx} out of range for scenario `{}` (limit {limit})",
                scenario.name
            ));
        }
    }
    Ok(())
}

/// Resolves a source through the cache: lookup under the lock, build
/// outside it (construction can be expensive and must not serialize the
/// pool), insert on completion. Concurrent identical misses may build
/// twice; the insert converges them onto one canonical `Arc`.
///
/// Session snapshots bypass the cache entirely: the graph behind a
/// session id changes with every `Mutate`, so caching by source bytes
/// would serve stale state.
fn resolve_instance(ctx: &ExecContext, source: &GraphSource) -> Result<Arc<CachedGraph>, String> {
    if let GraphSource::Session { id } = source {
        let session = find_session(ctx, *id)?;
        let guard = session.lock().expect("session poisoned");
        let graph = guard.graph_snapshot();
        let alpha = guard.alpha();
        drop(guard);
        let digest = edge_digest(&graph);
        return Ok(Arc::new(CachedGraph {
            graph,
            planted: None,
            alpha,
            digest,
        }));
    }
    let bytes = source_bytes(source, ctx.scale);
    let key = source_key(&bytes);
    let watch = Stopwatch::start();
    let cached = ctx
        .cache
        .lock()
        .expect("cache poisoned")
        .lookup(key, &bytes);
    ctx.obs.cache_lookup.observe(watch.elapsed_nanos());
    if let Some(cached) = cached {
        return Ok(cached);
    }
    let built = build_instance(source, ctx.scale)?;
    Ok(ctx
        .cache
        .lock()
        .expect("cache poisoned")
        .insert(key, bytes, built))
}

/// Validates wire-supplied sizes and generator parameters against the
/// service's resource caps before any allocation happens.
fn check_job_limits(n: u32, family: Option<&arbodom_scenarios::Family>) -> Result<(), String> {
    use arbodom_scenarios::Family;
    if n > MAX_JOB_NODES {
        return Err(format!(
            "n = {n} exceeds the service limit of {MAX_JOB_NODES} nodes per job"
        ));
    }
    let density = match family {
        Some(Family::ForestUnion { alpha, .. }) => Some(("α", *alpha as f64)),
        Some(Family::PrefAttach { m_per_node }) => Some(("m_per_node", *m_per_node as f64)),
        Some(Family::PlantedDs { extra_per_node, .. }) => {
            Some(("extra_per_node", *extra_per_node as f64))
        }
        Some(Family::KTree { k }) => Some(("k", *k as f64)),
        Some(Family::PowerLawCapped { cap, .. }) => Some(("cap", *cap as f64)),
        // avg_degree is a density knob too: Gnp clamps p to 1.0, so a
        // huge value silently requests the complete graph on n nodes.
        Some(Family::Gnp { avg_degree }) | Some(Family::UnitDisk { avg_degree }) => {
            Some(("avg_degree", *avg_degree))
        }
        _ => None,
    };
    if let Some((label, value)) = density {
        if !(0.0..=MAX_DENSITY_PARAM as f64).contains(&value) {
            return Err(format!(
                "{label} = {value} exceeds the service limit of {MAX_DENSITY_PARAM}"
            ));
        }
    }
    Ok(())
}

/// Validates wire-supplied weight models whose `assign` would otherwise
/// panic (the daemon must never die on untrusted input).
fn check_weight_model(weights: &WeightModel) -> Result<(), String> {
    match weights {
        WeightModel::Uniform { lo, hi } if *lo == 0 || lo > hi => Err(format!(
            "generator weights: uniform needs 1 <= lo <= hi, got [{lo}, {hi}]"
        )),
        WeightModel::Exponential { max_exp } if *max_exp > 63 => Err(format!(
            "generator weights: exponential needs max_exp <= 63, got {max_exp}"
        )),
        _ => Ok(()),
    }
}

fn build_instance(source: &GraphSource, scale: Scale) -> Result<CachedGraph, String> {
    match source {
        GraphSource::Inline { n, edges, weights } => {
            check_job_limits(*n, None)?;
            let mut b =
                GraphBuilder::try_new(*n as usize).map_err(|e| format!("inline graph: {e}"))?;
            for &(u, v) in edges {
                b.add_edge_u32(u, v)
                    .map_err(|e| format!("inline graph: {e}"))?;
            }
            let mut graph = b.build();
            if let Some(ws) = weights {
                graph = graph
                    .with_weights(ws.clone())
                    .map_err(|e| format!("inline graph: {e}"))?;
            }
            Ok(finish(graph, None, None))
        }
        GraphSource::Generator {
            family,
            n,
            weights,
            seed,
        } => {
            check_job_limits(*n, Some(family))?;
            check_weight_model(weights)?;
            let mut rng = StdRng::seed_from_u64(*seed);
            let built = family
                .build(*n as usize, &mut rng)
                .map_err(|e| format!("generator: {e}"))?;
            let graph = weights.assign(&built.graph, &mut rng);
            Ok(finish(graph, built.planted, family.alpha_bound()))
        }
        GraphSource::ScenarioCell {
            name,
            size_idx,
            weight_idx,
            loss_idx,
            seed_idx,
        } => {
            let scenario = find_scenario(name)?;
            check_cell_bounds(
                &scenario,
                scale,
                *size_idx,
                *weight_idx,
                *loss_idx,
                *seed_idx,
            )?;
            let n = scenario.sizes(scale)[*size_idx as usize];
            let built: Built = cell_instance(
                &scenario,
                n,
                *size_idx as usize,
                *weight_idx as usize,
                *loss_idx as usize,
                *seed_idx,
            )
            .map_err(|e| format!("scenario cell: {e}"))?;
            Ok(finish(
                built.graph,
                built.planted,
                scenario.family.alpha_bound(),
            ))
        }
        // Session snapshots are materialized (and never cached) in
        // `resolve_instance`; they cannot be "built" from scratch.
        GraphSource::Session { id } => Err(format!("session {id} cannot be rebuilt from a spec")),
    }
}

/// Stamps digest and α (the constructive bound when the family promises
/// one, the measured degeneracy otherwise — the matrix runner's rule).
fn finish(
    graph: arbodom_graph::Graph,
    planted: Option<Vec<NodeId>>,
    alpha_bound: Option<usize>,
) -> CachedGraph {
    let alpha = alpha_bound.unwrap_or_else(|| orientation::degeneracy_order(&graph).1.max(1));
    let digest = edge_digest(&graph);
    CachedGraph {
        graph,
        planted,
        alpha,
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbodom_graph::generators;

    fn ctx() -> ExecContext {
        ExecContext {
            cache: Arc::new(Mutex::new(GraphCache::new(64 << 20))),
            sessions: Arc::new(SessionTable::new()),
            sim_threads: 1,
            scale: Scale::Quick,
            obs: ServiceObs::new(&arbodom_obs::Registry::new()),
            sim_obs: None,
        }
    }

    fn inline_path(n: u32) -> GraphSource {
        GraphSource::Inline {
            n,
            edges: (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect(),
            weights: None,
        }
    }

    #[test]
    fn inline_job_solves_and_accounts_quality() {
        let ctx = ctx();
        let mut spec = JobSpec::new(inline_path(30));
        spec.return_members = true;
        let result = execute_job(&ctx, &spec).expect("job runs");
        assert!(result.valid);
        assert!(!result.flagged);
        assert_eq!(result.n, 30);
        assert_eq!(result.alpha, 1);
        let members = result.members.expect("requested members");
        assert_eq!(members.len() as u64, result.ds_size);
        let g = generators::path(30);
        assert_eq!(result.graph_digest, edge_digest(&g));
    }

    #[test]
    fn repeated_source_hits_the_cache_with_identical_results() {
        let ctx = ctx();
        let spec = JobSpec::new(GraphSource::Generator {
            family: arbodom_scenarios::Family::RandomTree,
            n: 80,
            weights: WeightModel::Unit,
            seed: 7,
        });
        let first = execute_job(&ctx, &spec).unwrap();
        let second = execute_job(&ctx, &spec).unwrap();
        assert_eq!(first, second);
        let stats = ctx.cache.lock().unwrap().stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn scenario_cell_matches_the_matrix_runner() {
        // The service must reproduce the exact instance and seed the
        // matrix runner uses for the same cell address.
        let spec = JobSpec::new(GraphSource::ScenarioCell {
            name: "trees-exact".into(),
            size_idx: 0,
            weight_idx: 0,
            loss_idx: 0,
            seed_idx: 0,
        });
        let result = execute_job(&ctx(), &spec).unwrap();
        let scenario = find("trees-exact").unwrap();
        let cell = arbodom_scenarios::runner::run_first_cell(
            &scenario,
            &arbodom_scenarios::RunConfig {
                scale: Scale::Quick,
                threads: 1,
            },
        )
        .unwrap();
        assert_eq!(result.graph_digest, cell.graph_digest);
        assert_eq!(result.ds_weight, cell.ds_weight);
        assert_eq!(result.rounds, cell.rounds as u64);
        assert_eq!(result.ratio, cell.ratio);
        assert!(!result.flagged);
    }

    #[test]
    fn session_jobs_snapshot_live_state() {
        use crate::protocol::{DeltaSpec, SessionPolicy};
        let ctx = ctx();
        let (id, opened) = open_session(&ctx, &JobSpec::new(inline_path(30))).expect("opens");
        assert!(opened.valid);
        // A job addressing the session reproduces the opening solve.
        let snap = execute_job(&ctx, &JobSpec::new(GraphSource::Session { id })).unwrap();
        assert_eq!(snap.graph_digest, opened.graph_digest);
        assert_eq!(snap.ds_weight, opened.ds_weight);
        // Mutating the session changes what later snapshot jobs see.
        let delta = DeltaSpec {
            inserts: vec![(0, 29)],
            deletes: vec![],
        };
        let session = ctx.sessions.get(id).unwrap();
        let (after, stats) = session
            .lock()
            .unwrap()
            .mutate(&delta, SessionPolicy::Repair, 1)
            .expect("mutates");
        assert!(after.valid);
        assert!(
            stats.repaired,
            "a single insert must not trip the drift bound"
        );
        assert_eq!(stats.batches_since_solve, 1);
        let snap2 = execute_job(&ctx, &JobSpec::new(GraphSource::Session { id })).unwrap();
        assert_eq!(snap2.graph_digest, after.graph_digest);
        assert_ne!(snap2.graph_digest, snap.graph_digest);
        assert_eq!(snap2.m, snap.m + 1);
        // Session snapshots never touch the cache.
        assert_eq!(ctx.cache.lock().unwrap().stats().entries, 1);
        // Release makes the id unresolvable.
        assert!(ctx.sessions.remove(id));
        let err = execute_job(&ctx, &JobSpec::new(GraphSource::Session { id })).unwrap_err();
        assert!(err.contains("unknown session"), "{err:?}");
    }

    #[test]
    fn open_rejects_sources_that_cannot_seed_a_session() {
        let ctx = ctx();
        let err = open_session(&ctx, &JobSpec::new(GraphSource::Session { id: 1 })).unwrap_err();
        assert!(err.contains("cannot be seeded"), "{err:?}");
    }

    #[test]
    fn malformed_sources_error_instead_of_panicking() {
        let ctx = ctx();
        for (source, needle) in [
            (
                GraphSource::Inline {
                    n: 2,
                    edges: vec![(0, 5)],
                    weights: None,
                },
                "out of range",
            ),
            (
                GraphSource::Inline {
                    n: 2,
                    edges: vec![(0, 1)],
                    weights: Some(vec![1]),
                },
                "expected 2 weights",
            ),
            (
                GraphSource::Generator {
                    family: arbodom_scenarios::Family::RandomTree,
                    n: 10,
                    weights: WeightModel::Uniform { lo: 0, hi: 5 },
                    seed: 0,
                },
                "uniform",
            ),
            (
                // max_exp >= 64 would overflow `1u64 << e` in assign().
                GraphSource::Generator {
                    family: arbodom_scenarios::Family::RandomTree,
                    n: 10,
                    weights: WeightModel::Exponential { max_exp: 100 },
                    seed: 0,
                },
                "max_exp",
            ),
            (
                // A ~10-byte frame must not trigger a multi-GB build.
                GraphSource::Generator {
                    family: arbodom_scenarios::Family::RandomTree,
                    n: u32::MAX,
                    weights: WeightModel::Unit,
                    seed: 0,
                },
                "service limit",
            ),
            (
                GraphSource::Inline {
                    n: u32::MAX,
                    edges: vec![],
                    weights: None,
                },
                "service limit",
            ),
            (
                GraphSource::Generator {
                    family: arbodom_scenarios::Family::PrefAttach {
                        m_per_node: 100_000,
                    },
                    n: 1000,
                    weights: WeightModel::Unit,
                    seed: 0,
                },
                "service limit",
            ),
            (
                GraphSource::ScenarioCell {
                    name: "no-such-scenario".into(),
                    size_idx: 0,
                    weight_idx: 0,
                    loss_idx: 0,
                    seed_idx: 0,
                },
                "unknown scenario",
            ),
            (
                GraphSource::ScenarioCell {
                    name: "trees-exact".into(),
                    size_idx: 9,
                    weight_idx: 0,
                    loss_idx: 0,
                    seed_idx: 0,
                },
                "size_idx",
            ),
        ] {
            let err = execute_job(&ctx, &JobSpec::new(source)).unwrap_err();
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        }
    }
}
