//! The `arbodomd` daemon: an event-driven TCP server over the job
//! executor.
//!
//! One reactor thread owns **every** socket: a nonblocking listener, a
//! self-wake channel, and all client connections, multiplexed through
//! `poll(2)` ([`arbodom_netpoll`]). Connections are never given
//! threads — reads feed an incremental [`FrameAssembler`], writes go
//! through a per-connection buffer with partial-write continuation, and
//! complete requests are queued per connection and processed strictly
//! in arrival order. Heavy requests (batches and session operations)
//! are dispatched onto the shared work-stealing [`Scheduler`]; their
//! completions come back over a channel (plus a reactor wakeup) and are
//! reassembled **in submission order** before hitting the write buffer,
//! so the response stream stays byte-deterministic at any worker count.
//!
//! # Admission control
//!
//! The daemon bounds its pending work explicitly instead of letting
//! the accept backlog or OS socket buffers absorb overload:
//!
//! - a global cap on admitted-but-unfinished **jobs**
//!   (`max_pending_jobs`) and request payload **bytes**
//!   (`max_pending_bytes`), checked when a heavy request reaches the
//!   head of its connection's queue — except that an empty queue always
//!   admits, so a batch larger than the cap can never starve;
//! - a per-connection cap on in-flight heavy requests
//!   (`per_conn_inflight`), checked at arrival so a pipelining client
//!   is answered in request order.
//!
//! A shed request is **answered, never dropped**: protocol-v3
//! connections get the typed [`Response::Overloaded`] (with a retry
//! hint) and stay open; older connections get [`Response::Error`] and
//! close, per that reply's documented semantics. Shed requests never
//! execute.
//!
//! # Version negotiation
//!
//! The first frame's version byte pins the connection. A byte outside
//! the supported range gets [`Response::UnsupportedVersion`] and the
//! connection closes; v2-only requests (sessions) on a v1 connection
//! and v3-only requests (`Hello`) on older connections get
//! `UnsupportedVersion` *without* closing.
//!
//! # Idle timeout
//!
//! A connection with no in-flight or queued work that stays silent past
//! `idle_timeout` is closed with a typed `Error` reply and counted in
//! `arbodom_connections_idle_closed_total` — a stalled or half-dead
//! peer (slow loris) can no longer pin reactor state forever.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use arbodom_congest::SimObs;
use arbodom_netpoll::wake::{wake_pair, WakeReceiver, Waker};
use arbodom_netpoll::{poll, PollFd, POLLIN, POLLOUT};
use arbodom_obs::{Counter, Registry, Stopwatch};
use arbodom_scenarios::Scale;

use crate::cache::GraphCache;
use crate::jobs::{execute_job, open_session, ExecContext};
use crate::obs::{ReqKind, ServiceObs};
use crate::protocol::{
    decode_payload, encode_payload, CacheStats, DeltaSpec, FrameAssembler, JobResult, Request,
    Response, ServerLimits, SessionPolicy, SessionUpdate, FRAME_HEADER_LEN, MAX_BATCH_JOBS,
    MAX_FRAME_LEN, PROTOCOL_MAX, PROTOCOL_MIN, PROTOCOL_V2, PROTOCOL_V3,
};
use crate::scheduler::Scheduler;
use crate::session::{SessionLimits, SessionTable};

/// Stop reading from a connection whose unflushed replies exceed this
/// many bytes: a client that floods requests without reading responses
/// gets natural backpressure instead of unbounded server memory.
const READ_PAUSE_BACKLOG: usize = 8 << 20;

/// Hard deadline for the post-shutdown grace period (finish in-flight
/// dispatches, flush replies) before the reactor exits regardless.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(10);

/// Daemon tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads in the job scheduler.
    pub workers: usize,
    /// Simulator threads per job (`run_*_on`; results identical at any
    /// value).
    pub sim_threads: usize,
    /// Graph-cache budget in **bytes** of resident instance memory
    /// ([`arbodom_graph::Graph::memory_footprint`] plus planted sets).
    pub cache_bytes: usize,
    /// Scale scenario-cell jobs resolve their size sweeps at.
    pub scale: Scale,
    /// Idle sessions are evicted after this long without a touch
    /// (lazily, on the next session-table access).
    pub session_ttl: Duration,
    /// Hard cap on concurrently open sessions; the least-recently-used
    /// session is evicted to admit a new one.
    pub max_sessions: usize,
    /// Whether jobs run with the simulator's phase-timing side channel
    /// attached ([`arbodom_congest::RunOptions::obs`]): per-round
    /// deliver/compute/dispatch/barrier nanoseconds and message-size
    /// histograms land in the daemon's metrics registry under the
    /// `sim_*` names. Off by default — the simulator stays provably
    /// instrumentation-free, and results are identical either way.
    pub sim_obs: bool,
    /// Global admission cap on admitted-but-unfinished jobs. A heavy
    /// request whose job count would push past this is shed — unless
    /// the queue is empty, which always admits (no starvation of large
    /// batches).
    pub max_pending_jobs: usize,
    /// Global admission cap on admitted-but-unfinished request payload
    /// bytes (same empty-queue exception).
    pub max_pending_bytes: usize,
    /// Per-connection cap on in-flight heavy requests (dispatched +
    /// queued). Requests past it are shed at arrival, in request order.
    pub per_conn_inflight: usize,
    /// Close connections with no in-flight or queued work after this
    /// long without any socket activity (`None` disables the timeout).
    pub idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let limits = SessionLimits::default();
        ServerConfig {
            workers: 4,
            sim_threads: 1,
            cache_bytes: 256 << 20,
            scale: Scale::Full,
            session_ttl: limits.idle_ttl,
            max_sessions: limits.max_sessions,
            sim_obs: false,
            max_pending_jobs: 256,
            max_pending_bytes: 64 << 20,
            per_conn_inflight: 16,
            idle_timeout: Some(Duration::from_secs(900)),
        }
    }
}

/// Admission-control knobs, normalized from [`ServerConfig`].
#[derive(Clone, Copy, Debug)]
struct Admission {
    max_pending_jobs: u64,
    max_pending_bytes: u64,
    per_conn_inflight: usize,
    idle_timeout: Option<Duration>,
}

/// Shared state of a running daemon. The reactor holds an `Arc` of
/// this; job closures deliberately get only the [`ExecContext`] slice
/// of it (see [`Scheduler`] for why).
struct ServerState {
    exec: ExecContext,
    scheduler: Scheduler,
    shutdown: AtomicBool,
    addr: SocketAddr,
    registry: Registry,
    /// Wakes the reactor out of `poll(2)`: job completions and shutdown
    /// requests both go through here.
    waker: Arc<Waker>,
    admission: Admission,
    threads_spawned: Arc<AtomicU64>,
}

impl ServerState {
    /// Flags shutdown and wakes the reactor so it observes the flag
    /// immediately.
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    /// The daemon counters behind [`Response::Stats`]: the graph cache's
    /// own, with the session table's block filled in.
    fn daemon_stats(&self) -> CacheStats {
        let mut stats = self.exec.cache.lock().expect("cache poisoned").stats();
        let (sessions, session_bytes, session_evictions) = self.exec.sessions.usage();
        stats.sessions = sessions;
        stats.session_bytes = session_bytes;
        stats.session_evictions = session_evictions;
        stats
    }

    /// Refreshes the scrape-time resource gauges and renders the whole
    /// registry in Prometheus text-exposition format.
    fn render_metrics(&self) -> String {
        let stats = self.daemon_stats();
        self.exec.obs.set_resource_gauges(
            &stats,
            (stats.sessions, stats.session_bytes, stats.session_evictions),
        );
        self.registry.render_prometheus()
    }

    /// The limits advertised to [`Request::Hello`].
    fn server_limits(&self) -> ServerLimits {
        ServerLimits {
            protocol_min: PROTOCOL_MIN,
            protocol_max: PROTOCOL_MAX,
            workers: self.scheduler.worker_count() as u64,
            max_pending_jobs: self.admission.max_pending_jobs,
            max_pending_bytes: self.admission.max_pending_bytes,
            per_conn_inflight: self.admission.per_conn_inflight as u64,
            idle_timeout_ms: self
                .admission
                .idle_timeout
                .map(|d| (d.as_millis() as u64).max(1))
                .unwrap_or(0),
            max_frame_len: MAX_FRAME_LEN as u64,
            max_batch_jobs: MAX_BATCH_JOBS as u64,
        }
    }
}

/// A running daemon, stoppable from the owning thread or via a client's
/// [`Request::Shutdown`].
pub struct Server {
    state: Arc<ServerState>,
    reactor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// reactor.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let (waker, wake_rx) = wake_pair()?;
        let registry = Registry::new();
        let threads_spawned = Arc::new(AtomicU64::new(0));
        let state = Arc::new(ServerState {
            exec: ExecContext {
                cache: Arc::new(Mutex::new(GraphCache::new(cfg.cache_bytes))),
                sessions: Arc::new(SessionTable::with_limits(SessionLimits {
                    idle_ttl: cfg.session_ttl,
                    max_sessions: cfg.max_sessions.max(1),
                })),
                sim_threads: cfg.sim_threads.max(1),
                scale: cfg.scale,
                obs: ServiceObs::new(&registry),
                sim_obs: cfg.sim_obs.then(|| SimObs::new(&registry)),
            },
            scheduler: Scheduler::with_spawn_counter(cfg.workers, &threads_spawned),
            shutdown: AtomicBool::new(false),
            addr: local,
            registry,
            waker: Arc::new(waker),
            admission: Admission {
                max_pending_jobs: cfg.max_pending_jobs.max(1) as u64,
                max_pending_bytes: cfg.max_pending_bytes.max(1) as u64,
                per_conn_inflight: cfg.per_conn_inflight.max(1),
                idle_timeout: cfg.idle_timeout,
            },
            threads_spawned: Arc::clone(&threads_spawned),
        });
        let reactor_state = Arc::clone(&state);
        threads_spawned.fetch_add(1, Ordering::SeqCst);
        let reactor = std::thread::Builder::new()
            .name("arbodomd-reactor".into())
            .spawn(move || Reactor::new(listener, wake_rx, reactor_state).run())?;
        Ok(Server {
            state,
            reactor: Some(reactor),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The admission limits this daemon advertises to
    /// [`Request::Hello`].
    pub fn limits(&self) -> ServerLimits {
        self.state.server_limits()
    }

    /// Total threads this server has ever spawned: one reactor plus the
    /// scheduler workers. The count is flat for the daemon's lifetime —
    /// connections never get threads — which the overload e2e tests
    /// pin.
    pub fn threads_spawned(&self) -> u64 {
        self.state.threads_spawned.load(Ordering::SeqCst)
    }

    /// A handle to the daemon's metrics registry. Clones share storage,
    /// so a handle taken before [`Server::wait`] still reads the final
    /// counter values after shutdown — that is how the `arbodomd` binary
    /// prints its exit snapshot.
    pub fn registry(&self) -> Registry {
        self.state.registry.clone()
    }

    /// Refreshes the resource gauges and renders the current metrics in
    /// Prometheus text-exposition format — exactly what a
    /// [`Request::Metrics`] scrape returns.
    pub fn metrics_prometheus(&self) -> String {
        self.state.render_metrics()
    }

    /// Blocks until the daemon shuts down (via a client's `Shutdown`
    /// request). Used by the `arbodomd` binary.
    pub fn wait(mut self) {
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }

    /// Stops the reactor and joins it. In-flight dispatches finish and
    /// their replies are flushed (bounded by a grace deadline); queued
    /// requests that never dispatched are dropped with their
    /// connections.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.reactor.take() {
            self.state.request_shutdown();
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------------
// Reactor data model
// ---------------------------------------------------------------------------

/// One queued request on a connection, decoded but not yet processed.
struct QueuedReq {
    kind: ReqKind,
    /// Started when the complete frame was in hand — time blocked
    /// waiting for the client is not request latency.
    watch: Stopwatch,
    payload_len: usize,
    body: QueuedBody,
}

enum QueuedBody {
    /// Cheap request, answered on the reactor when it reaches the head.
    Inline(Request),
    /// Heavy request (batch / session op): admission-checked at the
    /// head, then dispatched to the scheduler.
    Heavy(Request),
    /// Typed version-gating rejection, delivered in request order.
    Reject(Response),
    /// The per-connection in-flight cap was hit at arrival: answer
    /// `Overloaded` (v3) / `Error` (older) when this reaches the head.
    Shed,
}

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    assembler: FrameAssembler,
    /// Write buffer with partial-write continuation: `out[out_pos..]`
    /// is still owed to the socket.
    out: Vec<u8>,
    out_pos: usize,
    /// Version replies are framed with: the pinned version once known,
    /// [`PROTOCOL_MAX`] before.
    version: u8,
    pinned: Option<u8>,
    queue: VecDeque<QueuedReq>,
    /// Heavy requests currently queued (not counting the dispatched
    /// one) — the arrival-time half of the per-connection cap.
    heavy_queued: usize,
    /// A dispatch is in flight; the queue is paused behind it.
    busy: bool,
    /// Terminal reply to emit once the queue drains, then close
    /// (version pin violations, desynced framing).
    fatal: Option<Response>,
    /// Read side saw EOF or the framing desynced: stop reading.
    read_closed: bool,
    /// Flush `out`, then drop the connection.
    closing: bool,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            assembler: FrameAssembler::new(),
            out: Vec::new(),
            out_pos: 0,
            version: PROTOCOL_MAX,
            pinned: None,
            queue: VecDeque::new(),
            heavy_queued: 0,
            busy: false,
            fatal: None,
            read_closed: false,
            closing: false,
            last_activity: Instant::now(),
        }
    }

    fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Whether the reactor should poll this connection for reads.
    fn wants_read(&self) -> bool {
        !self.read_closed && !self.closing && self.backlog() < READ_PAUSE_BACKLOG
    }
}

/// Reply reassembly state of one dispatched request.
struct Dispatch {
    conn: u64,
    kind: ReqKind,
    watch: Stopwatch,
    /// Payload bytes held against `max_pending_bytes` until the
    /// dispatch completes.
    bytes: u64,
    /// Outstanding job completions (1 for session operations).
    jobs_left: u32,
    reply: DispatchReply,
}

enum DispatchReply {
    /// In-order batch reassembly: completions arriving early are parked
    /// until their index is next.
    Batch {
        total: u32,
        next: u32,
        parked: BTreeMap<u32, Result<JobResult, String>>,
    },
    /// A single-reply session operation.
    Control,
}

enum Completion {
    Job {
        dispatch: u64,
        index: u32,
        outcome: Result<JobResult, String>,
    },
    Control {
        dispatch: u64,
        reply: Response,
    },
}

struct Reactor {
    state: Arc<ServerState>,
    listener: TcpListener,
    wake_rx: WakeReceiver,
    completions_tx: mpsc::Sender<Completion>,
    completions_rx: mpsc::Receiver<Completion>,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    dispatches: HashMap<u64, Dispatch>,
    next_dispatch: u64,
    /// Admitted-but-unfinished jobs (the admission queue depth).
    pending_jobs: u64,
    /// Admitted-but-unfinished request payload bytes.
    pending_bytes: u64,
    shutdown_since: Option<Instant>,
}

/// The server's suggested client backoff: scales with queue depth, so a
/// deeper queue spreads retries further apart.
fn retry_hint_ms(queue_depth: u64) -> u64 {
    (10 + queue_depth.saturating_mul(5)).min(2_000)
}

/// Encodes `msg` and appends it to the connection's write buffer,
/// recording the encode phase.
fn append_frame(conn: &mut Conn, msg: &Response, obs: &ServiceObs) {
    let mut watch = Stopwatch::start();
    let payload = encode_payload(msg);
    obs.encode.observe(watch.lap_nanos());
    debug_assert!(payload.len() <= MAX_FRAME_LEN, "server reply oversized");
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0] = conn.version;
    header[1..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    conn.out.extend_from_slice(&header);
    conn.out.extend_from_slice(&payload);
}

/// Appends one in-order batch job reply. A legal job can still produce
/// an over-limit frame (a huge member list): degrade that one job to a
/// deterministic error instead of killing the whole connection
/// mid-batch.
fn append_job_frame(
    conn: &mut Conn,
    index: u32,
    outcome: Result<JobResult, String>,
    obs: &ServiceObs,
) {
    let mut watch = Stopwatch::start();
    let mut payload = encode_payload(&Response::Job { index, outcome });
    if payload.len() > MAX_FRAME_LEN {
        payload = encode_payload(&Response::Job {
            index,
            outcome: Err(format!(
                "result exceeds the {MAX_FRAME_LEN}-byte frame limit (retry without return_members)"
            )),
        });
    }
    obs.encode.observe(watch.lap_nanos());
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0] = conn.version;
    header[1..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    conn.out.extend_from_slice(&header);
    conn.out.extend_from_slice(&payload);
}

fn record_request(obs: &ServiceObs, kind: ReqKind, watch: &Stopwatch) {
    obs.requests_total[kind as usize].inc();
    obs.request_nanos[kind as usize].observe(watch.elapsed_nanos());
}

/// Converts a panic inside a session operation into a deterministic
/// job-level error, exactly like batch workers do — the daemon must
/// never die on one bad request. Caught panics are counted in `panics`.
fn guarded<T>(panics: &Counter, op: impl FnOnce() -> Result<T, String>) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(op)).unwrap_or_else(|_| {
        panics.inc();
        Err("session operation panicked inside the server".to_string())
    })
}

fn mutate_session(
    exec: &ExecContext,
    id: u64,
    delta: &DeltaSpec,
    policy: SessionPolicy,
) -> Result<SessionUpdate, String> {
    let session = exec.sessions.get(id).map_err(|lost| lost.describe(id))?;
    let mut guard = session
        .lock()
        .map_err(|_| format!("session {id} was poisoned by an earlier panic"))?;
    let (result, repair) = guard.mutate(delta, policy, exec.sim_threads)?;
    // The graph just changed size: refresh the byte accounting (and
    // recency) while we still hold the session.
    exec.sessions.record_usage(id, guard.cost_bytes());
    Ok(SessionUpdate { result, repair })
}

fn resolve_session(exec: &ExecContext, id: u64) -> Result<SessionUpdate, String> {
    let session = exec.sessions.get(id).map_err(|lost| lost.describe(id))?;
    let mut guard = session
        .lock()
        .map_err(|_| format!("session {id} was poisoned by an earlier panic"))?;
    let (result, repair) = guard.resolve(exec.sim_threads)?;
    exec.sessions.record_usage(id, guard.cost_bytes());
    Ok(SessionUpdate { result, repair })
}

impl Reactor {
    fn new(listener: TcpListener, wake_rx: WakeReceiver, state: Arc<ServerState>) -> Self {
        let (completions_tx, completions_rx) = mpsc::channel();
        Reactor {
            state,
            listener,
            wake_rx,
            completions_tx,
            completions_rx,
            conns: HashMap::new(),
            next_conn: 0,
            dispatches: HashMap::new(),
            next_dispatch: 0,
            pending_jobs: 0,
            pending_bytes: 0,
            shutdown_since: None,
        }
    }

    fn obs(&self) -> &ServiceObs {
        &self.state.exec.obs
    }

    fn sync_admission_gauges(&self) {
        let obs = self.obs();
        obs.pending_jobs.set(self.pending_jobs);
        obs.pending_bytes.set(self.pending_bytes);
    }

    fn run(mut self) {
        loop {
            let shutting_down = self.state.shutdown.load(Ordering::SeqCst);
            if shutting_down {
                let since = *self.shutdown_since.get_or_insert_with(Instant::now);
                let drained =
                    self.dispatches.is_empty() && self.conns.values().all(|c| c.backlog() == 0);
                if drained || since.elapsed() >= SHUTDOWN_GRACE {
                    break;
                }
            }

            // Build the poll set: listener (until shutdown), the wake
            // channel, then every connection that wants events.
            let mut fds = Vec::with_capacity(2 + self.conns.len());
            let listener_slot = if shutting_down {
                usize::MAX
            } else {
                fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
                fds.len() - 1
            };
            fds.push(PollFd::new(self.wake_rx.fd(), POLLIN));
            let mut conn_ids = Vec::with_capacity(self.conns.len());
            for (&id, conn) in &self.conns {
                let mut events = 0i16;
                if !shutting_down && conn.wants_read() {
                    events |= POLLIN;
                }
                if conn.backlog() > 0 {
                    events |= POLLOUT;
                }
                if events != 0 {
                    conn_ids.push((fds.len(), id));
                    fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                }
            }

            let timeout = self.poll_timeout(shutting_down);
            if poll(&mut fds, timeout).is_err() {
                // poll(2) failing outright (EINVAL/ENOMEM) means the fd
                // set is broken; back off rather than spin.
                std::thread::sleep(Duration::from_millis(10));
            }

            self.wake_rx.drain();
            self.drain_completions();

            if listener_slot != usize::MAX && fds[listener_slot].readable() {
                self.accept_ready();
            }
            let readable: Vec<u64> = conn_ids
                .iter()
                .filter(|&&(slot, _)| fds[slot].readable())
                .map(|&(_, id)| id)
                .collect();
            for id in readable {
                self.read_conn(id);
                self.pump(id);
            }

            self.sweep_idle();
            self.flush_all();
            self.remove_finished();
        }
        // Shutting down: refresh the resource gauges one last time so a
        // registry handle held across `Server::wait` reads final values
        // (the binary's exit snapshot).
        let _ = self.state.render_metrics();
    }

    /// Poll timeout: the nearest idle deadline, capped by a safety tick
    /// (tighter while draining a shutdown).
    fn poll_timeout(&self, shutting_down: bool) -> Option<Duration> {
        let cap = if shutting_down {
            Duration::from_millis(50)
        } else {
            Duration::from_millis(500)
        };
        let idle = self.state.admission.idle_timeout.and_then(|timeout| {
            self.conns
                .values()
                .filter(|c| !c.busy && c.queue.is_empty() && !c.closing)
                .map(|c| timeout.saturating_sub(c.last_activity.elapsed()))
                .min()
        });
        Some(idle.map_or(cap, |d| d.min(cap)))
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns.insert(id, Conn::new(stream));
                    self.obs().connections_accepted.inc();
                    self.obs().connections_open.set(self.conns.len() as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (ECONNABORTED
                // and friends): skip and keep serving.
                Err(_) => break,
            }
        }
    }

    /// Drains the socket into the frame assembler and queues every
    /// complete request.
    fn read_conn(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let mut buf = [0u8; 16 * 1024];
        while conn.wants_read() {
            match (&conn.stream).read(&mut buf) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    conn.assembler.push(&buf[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // The socket is broken; nothing we write can arrive.
                    conn.read_closed = true;
                    conn.closing = true;
                    conn.out.clear();
                    conn.out_pos = 0;
                    break;
                }
            }
        }
        while conn.fatal.is_none() {
            match conn.assembler.next_frame() {
                Ok(None) => break,
                Ok(Some((version, payload))) => {
                    ingest_frame(&self.state, conn, version, payload);
                }
                Err(e) => {
                    // Framing desynced (oversized header): report once
                    // after the queue drains, then close.
                    conn.fatal = Some(Response::Error(e.to_string()));
                    conn.read_closed = true;
                }
            }
        }
    }

    /// Processes a connection's queue head until a dispatch blocks it.
    fn pump(&mut self, id: u64) {
        loop {
            let head = {
                let Some(conn) = self.conns.get_mut(&id) else {
                    return;
                };
                if conn.busy || conn.closing {
                    return;
                }
                match conn.queue.pop_front() {
                    Some(req) => {
                        if matches!(req.body, QueuedBody::Heavy(_)) {
                            conn.heavy_queued -= 1;
                        }
                        req
                    }
                    None => break,
                }
            };
            match head.body {
                QueuedBody::Reject(reply) => {
                    if let Some(conn) = self.conns.get_mut(&id) {
                        append_frame(conn, &reply, &self.state.exec.obs);
                    }
                }
                QueuedBody::Shed => self.shed(id, head.kind, &head.watch),
                QueuedBody::Inline(request) => self.handle_inline(id, request, &head.watch),
                QueuedBody::Heavy(request) => {
                    let cost = match &request {
                        Request::Batch(jobs) => jobs.len() as u64,
                        _ => 1,
                    };
                    let fits = self.pending_jobs + cost <= self.state.admission.max_pending_jobs
                        && self.pending_bytes + head.payload_len as u64
                            <= self.state.admission.max_pending_bytes;
                    // An empty queue always admits: a batch larger than
                    // the global cap must be able to run once the queue
                    // drains, or it could never run at all.
                    if self.pending_jobs == 0 || fits {
                        self.dispatch(id, request, head.kind, head.watch, head.payload_len);
                        return; // busy now; the queue waits
                    }
                    self.shed(id, head.kind, &head.watch);
                    if self.conns.get(&id).is_none_or(|c| c.closing) {
                        return;
                    }
                }
            }
        }
        // Queue drained: emit any terminal reply, then let the removal
        // pass close the connection once the flush completes.
        if let Some(conn) = self.conns.get_mut(&id) {
            if !conn.busy && conn.queue.is_empty() {
                if let Some(reply) = conn.fatal.take() {
                    append_frame(conn, &reply, &self.state.exec.obs);
                    conn.closing = true;
                }
            }
        }
    }

    /// Answers a shed request: typed `Overloaded` on v3 (connection
    /// stays open), `Error` + close on older versions (which cannot
    /// decode the new tag; `Error` closes by its documented contract).
    fn shed(&mut self, id: u64, kind: ReqKind, watch: &Stopwatch) {
        let depth = self.pending_jobs;
        let obs = &self.state.exec.obs;
        obs.requests_shed.inc();
        record_request(obs, kind, watch);
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.version >= PROTOCOL_V3 {
            append_frame(
                conn,
                &Response::Overloaded {
                    retry_after_ms: retry_hint_ms(depth),
                    queue_depth: depth,
                },
                obs,
            );
        } else {
            append_frame(
                conn,
                &Response::Error(format!(
                    "server overloaded (queue depth {depth}): retry later"
                )),
                obs,
            );
            conn.queue.clear();
            conn.heavy_queued = 0;
            conn.closing = true;
        }
    }

    /// Serves a cheap request on the reactor thread.
    fn handle_inline(&mut self, id: u64, request: Request, watch: &Stopwatch) {
        let state = Arc::clone(&self.state);
        let obs = &state.exec.obs;
        let kind = ReqKind::of(&request);
        let reply = match request {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats(state.daemon_stats()),
            Request::Metrics => Response::MetricsReport(state.render_metrics()),
            Request::Hello => Response::Limits(state.server_limits()),
            Request::Release { session } => Response::Released {
                id: session,
                existed: state.exec.sessions.remove(session),
            },
            // Empty batches never dispatch: the trailer is the answer.
            Request::Batch(jobs) if jobs.is_empty() => Response::BatchDone { jobs: 0 },
            Request::Shutdown => {
                let Some(conn) = self.conns.get_mut(&id) else {
                    return;
                };
                append_frame(conn, &Response::ShuttingDown, obs);
                conn.closing = true;
                record_request(obs, kind, watch);
                state.request_shutdown();
                return;
            }
            other => unreachable!("non-inline request {other:?} reached handle_inline"),
        };
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        append_frame(conn, &reply, obs);
        conn.last_activity = Instant::now();
        record_request(obs, kind, watch);
    }

    /// Fans a heavy request onto the scheduler and registers its reply
    /// reassembly state.
    fn dispatch(
        &mut self,
        conn_id: u64,
        request: Request,
        kind: ReqKind,
        watch: Stopwatch,
        payload_len: usize,
    ) {
        let dispatch_id = self.next_dispatch;
        self.next_dispatch += 1;
        let obs = self.obs().clone();
        obs.requests_admitted.inc();
        let state = &self.state;
        let spawn_control = |op: Box<dyn FnOnce(&ExecContext) -> Response + Send>| {
            let exec = state.exec.clone();
            let waker = Arc::clone(&state.waker);
            let tx = self.completions_tx.clone();
            let queued = Stopwatch::start();
            state.scheduler.spawn(move || {
                exec.obs.queue_wait.observe(queued.elapsed_nanos());
                let reply = op(&exec);
                let _ = tx.send(Completion::Control {
                    dispatch: dispatch_id,
                    reply,
                });
                waker.wake();
            });
        };
        let (jobs_left, bytes, reply) = match request {
            Request::Batch(jobs) => {
                let total = jobs.len() as u32;
                for (index, job) in jobs.into_iter().enumerate() {
                    let exec = state.exec.clone();
                    let waker = Arc::clone(&state.waker);
                    let tx = self.completions_tx.clone();
                    let queued = Stopwatch::start();
                    state.scheduler.spawn(move || {
                        exec.obs.queue_wait.observe(queued.elapsed_nanos());
                        // Every job sends exactly one reply, even if it
                        // panics — otherwise the in-order reassembly
                        // would stall forever on the missing index. The
                        // message is fixed (not the panic payload) to
                        // keep the response stream deterministic.
                        let outcome = catch_unwind(AssertUnwindSafe(|| execute_job(&exec, &job)))
                            .unwrap_or_else(|_| {
                                exec.obs.panics.inc();
                                exec.obs.job_errors.inc();
                                Err("job panicked inside the worker".to_string())
                            });
                        let _ = tx.send(Completion::Job {
                            dispatch: dispatch_id,
                            index: index as u32,
                            outcome,
                        });
                        waker.wake();
                    });
                }
                (
                    total,
                    payload_len as u64,
                    DispatchReply::Batch {
                        total,
                        next: 0,
                        parked: BTreeMap::new(),
                    },
                )
            }
            Request::Open(spec) => {
                spawn_control(Box::new(move |exec| {
                    let (id, outcome) =
                        match guarded(&exec.obs.panics, || open_session(exec, &spec)) {
                            Ok((id, result)) => {
                                exec.obs.sessions_opened.inc();
                                (id, Ok(result))
                            }
                            Err(e) => (0, Err(e)),
                        };
                    Response::Session { id, outcome }
                }));
                (1, payload_len as u64, DispatchReply::Control)
            }
            Request::Mutate {
                session,
                delta,
                policy,
            } => {
                spawn_control(Box::new(move |exec| {
                    let outcome = guarded(&exec.obs.panics, || {
                        mutate_session(exec, session, &delta, policy)
                    });
                    if let Ok(update) = &outcome {
                        exec.obs.record_repair(update.repair.repaired);
                    }
                    Response::Mutated {
                        id: session,
                        outcome,
                    }
                }));
                (1, payload_len as u64, DispatchReply::Control)
            }
            Request::Resolve { session } => {
                spawn_control(Box::new(move |exec| {
                    let outcome = guarded(&exec.obs.panics, || resolve_session(exec, session));
                    if outcome.is_ok() {
                        exec.obs.record_repair(false);
                    }
                    Response::Mutated {
                        id: session,
                        outcome,
                    }
                }));
                (1, payload_len as u64, DispatchReply::Control)
            }
            other => unreachable!("non-heavy request {other:?} reached dispatch"),
        };
        self.pending_jobs += u64::from(jobs_left);
        self.pending_bytes += bytes;
        self.sync_admission_gauges();
        self.dispatches.insert(
            dispatch_id,
            Dispatch {
                conn: conn_id,
                kind,
                watch,
                bytes,
                jobs_left,
                reply,
            },
        );
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            conn.busy = true;
        }
    }

    fn drain_completions(&mut self) {
        let mut finished = Vec::new();
        while let Ok(completion) = self.completions_rx.try_recv() {
            let obs = self.state.exec.obs.clone();
            let (dispatch_id, conn_id, done) = match completion {
                Completion::Job {
                    dispatch,
                    index,
                    outcome,
                } => {
                    let Some(d) = self.dispatches.get_mut(&dispatch) else {
                        continue;
                    };
                    self.pending_jobs = self.pending_jobs.saturating_sub(1);
                    d.jobs_left = d.jobs_left.saturating_sub(1);
                    let DispatchReply::Batch {
                        total,
                        ref mut next,
                        ref mut parked,
                    } = d.reply
                    else {
                        continue;
                    };
                    parked.insert(index, outcome);
                    if let Some(conn) = self.conns.get_mut(&d.conn) {
                        while let Some(outcome) = parked.remove(next) {
                            append_job_frame(conn, *next, outcome, &obs);
                            *next += 1;
                        }
                        if *next == total {
                            append_frame(conn, &Response::BatchDone { jobs: total }, &obs);
                        }
                    } else {
                        // The client went away: discard replies but keep
                        // the accounting exact.
                        while parked.remove(next).is_some() {
                            *next += 1;
                        }
                    }
                    (dispatch, d.conn, d.jobs_left == 0)
                }
                Completion::Control { dispatch, reply } => {
                    let Some(d) = self.dispatches.get_mut(&dispatch) else {
                        continue;
                    };
                    self.pending_jobs = self.pending_jobs.saturating_sub(1);
                    d.jobs_left = 0;
                    if let Some(conn) = self.conns.get_mut(&d.conn) {
                        append_frame(conn, &reply, &obs);
                    }
                    (dispatch, d.conn, true)
                }
            };
            if done {
                let dispatch = self
                    .dispatches
                    .remove(&dispatch_id)
                    .expect("finished dispatch present");
                self.pending_bytes = self.pending_bytes.saturating_sub(dispatch.bytes);
                record_request(&obs, dispatch.kind, &dispatch.watch);
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    conn.busy = false;
                    conn.last_activity = Instant::now();
                    finished.push(conn_id);
                }
            }
        }
        if !finished.is_empty() {
            self.sync_admission_gauges();
        }
        for id in finished {
            if !self.state.shutdown.load(Ordering::SeqCst) {
                self.pump(id);
            }
        }
    }

    /// Closes connections with no in-flight or queued work that have
    /// been silent past the idle timeout — the slow-loris defense.
    fn sweep_idle(&mut self) {
        let Some(timeout) = self.state.admission.idle_timeout else {
            return;
        };
        let obs = self.state.exec.obs.clone();
        for conn in self.conns.values_mut() {
            if conn.closing || conn.busy || !conn.queue.is_empty() {
                continue;
            }
            if conn.last_activity.elapsed() >= timeout {
                obs.connections_idle_closed.inc();
                append_frame(
                    conn,
                    &Response::Error(format!(
                        "idle timeout: no activity for {}s, closing connection",
                        timeout.as_secs()
                    )),
                    &obs,
                );
                conn.read_closed = true;
                conn.closing = true;
            }
        }
    }

    fn flush_all(&mut self) {
        let obs = self.state.exec.obs.clone();
        for conn in self.conns.values_mut() {
            while conn.backlog() > 0 {
                let watch = Stopwatch::start();
                match (&conn.stream).write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        conn.closing = true;
                        conn.out.clear();
                        conn.out_pos = 0;
                        break;
                    }
                    Ok(n) => {
                        obs.write.observe(watch.elapsed_nanos());
                        conn.out_pos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.closing = true;
                        conn.out.clear();
                        conn.out_pos = 0;
                        break;
                    }
                }
            }
            if conn.out_pos == conn.out.len() {
                conn.out.clear();
                conn.out_pos = 0;
            } else if conn.out_pos >= 256 * 1024 {
                conn.out.drain(..conn.out_pos);
                conn.out_pos = 0;
            }
        }
    }

    /// Drops connections that are done: flushed after `closing`, or
    /// EOF'd with nothing left to answer.
    fn remove_finished(&mut self) {
        let before = self.conns.len();
        self.conns.retain(|_, conn| {
            if conn.closing && conn.backlog() == 0 {
                return false;
            }
            let drained =
                conn.read_closed && !conn.busy && conn.queue.is_empty() && conn.backlog() == 0;
            !(drained && conn.fatal.is_none())
        });
        if self.conns.len() != before {
            self.obs().connections_open.set(self.conns.len() as u64);
        }
    }
}

/// Pins/validates the frame's version byte, decodes the request, and
/// queues it on the connection — shedding at arrival if the
/// per-connection in-flight cap is hit.
fn ingest_frame(state: &ServerState, conn: &mut Conn, frame_version: u8, payload: Vec<u8>) {
    let version = match conn.pinned {
        None => {
            if !(PROTOCOL_MIN..=PROTOCOL_MAX).contains(&frame_version) {
                conn.fatal = Some(Response::UnsupportedVersion {
                    got: frame_version,
                    min: PROTOCOL_MIN,
                    max: PROTOCOL_MAX,
                });
                conn.read_closed = true;
                return;
            }
            conn.pinned = Some(frame_version);
            conn.version = frame_version;
            frame_version
        }
        Some(pinned) if frame_version != pinned => {
            conn.fatal = Some(Response::Error(format!(
                "connection pinned to protocol version {pinned}, frame carried {frame_version}"
            )));
            conn.read_closed = true;
            return;
        }
        Some(pinned) => pinned,
    };
    let obs = &state.exec.obs;
    // The request clock starts when a complete frame is in hand — time
    // blocked waiting on the client's segmentation is not request
    // latency.
    let mut watch = Stopwatch::start();
    let request = match decode_payload::<Request>(&payload) {
        Ok(request) => request,
        Err(e) => {
            conn.fatal = Some(Response::Error(e.to_string()));
            conn.read_closed = true;
            return;
        }
    };
    obs.decode.observe(watch.lap_nanos());
    let kind = ReqKind::of(&request);
    // Version gating is typed and non-fatal: the connection stays
    // usable for its own pinned surface.
    let body = if version < PROTOCOL_V2 && request.needs_v2() {
        QueuedBody::Reject(Response::UnsupportedVersion {
            got: version,
            min: PROTOCOL_V2,
            max: PROTOCOL_MAX,
        })
    } else if version < PROTOCOL_V3 && request.needs_v3() {
        QueuedBody::Reject(Response::UnsupportedVersion {
            got: version,
            min: PROTOCOL_V3,
            max: PROTOCOL_MAX,
        })
    } else {
        match request {
            Request::Ping
            | Request::Stats
            | Request::Shutdown
            | Request::Metrics
            | Request::Hello
            | Request::Release { .. } => QueuedBody::Inline(request),
            Request::Batch(ref jobs) if jobs.is_empty() => QueuedBody::Inline(request),
            Request::Batch(_)
            | Request::Open(_)
            | Request::Mutate { .. }
            | Request::Resolve { .. } => {
                let inflight = conn.heavy_queued + usize::from(conn.busy);
                if inflight >= state.admission.per_conn_inflight {
                    QueuedBody::Shed
                } else {
                    conn.heavy_queued += 1;
                    QueuedBody::Heavy(request)
                }
            }
        }
    };
    conn.queue.push_back(QueuedReq {
        kind,
        watch,
        payload_len: payload.len(),
        body,
    });
}
