//! The `arbodomd` daemon: a threaded TCP server over the job executor.
//!
//! One thread accepts connections; each connection gets a handler thread
//! speaking the versioned frame protocol; batch jobs fan out onto the
//! shared work-stealing [`Scheduler`] and their replies are reassembled
//! **in submission order** before hitting the socket — out-of-order
//! completion is buffered, so the response stream is byte-deterministic
//! at any worker count.
//!
//! Version negotiation: the first frame's version byte pins the
//! connection. A byte outside the server's supported range gets a
//! [`Response::UnsupportedVersion`] reply and the connection closes; a
//! supported-but-old version keeps working for its own request surface,
//! and v2-only requests (the session protocol) on a v1 connection get
//! `UnsupportedVersion` *without* closing — the client can keep issuing
//! v1 requests.
//!
//! Session requests (`Open`/`Mutate`/`Resolve`/`Release`) run
//! synchronously on the connection's handler thread, not the scheduler:
//! they address owned mutable state, and in-order execution per
//! connection is exactly the consistency contract the protocol
//! documents.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use arbodom_congest::{SimObs, Wire};
use arbodom_obs::{Counter, Registry, Stopwatch};
use arbodom_scenarios::Scale;

use crate::cache::GraphCache;
use crate::jobs::{execute_job, open_session, ExecContext};
use crate::obs::{ReqKind, ServiceObs};
use crate::protocol::{
    decode_payload, read_frame, write_message, CacheStats, DeltaSpec, JobResult, JobSpec, Request,
    Response, SessionPolicy, SessionUpdate, PROTOCOL_MAX, PROTOCOL_MIN, PROTOCOL_V2,
};
use crate::scheduler::Scheduler;
use crate::session::{SessionLimits, SessionTable};
use crate::ServiceError;
use std::time::Duration;

/// Daemon tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads in the job scheduler.
    pub workers: usize,
    /// Simulator threads per job (`run_*_on`; results identical at any
    /// value).
    pub sim_threads: usize,
    /// Graph-cache budget in **bytes** of resident instance memory
    /// ([`arbodom_graph::Graph::memory_footprint`] plus planted sets).
    pub cache_bytes: usize,
    /// Scale scenario-cell jobs resolve their size sweeps at.
    pub scale: Scale,
    /// Idle sessions are evicted after this long without a touch
    /// (lazily, on the next session-table access).
    pub session_ttl: Duration,
    /// Hard cap on concurrently open sessions; the least-recently-used
    /// session is evicted to admit a new one.
    pub max_sessions: usize,
    /// Whether jobs run with the simulator's phase-timing side channel
    /// attached ([`arbodom_congest::RunOptions::obs`]): per-round
    /// deliver/compute/dispatch/barrier nanoseconds and message-size
    /// histograms land in the daemon's metrics registry under the
    /// `sim_*` names. Off by default — the simulator stays provably
    /// instrumentation-free, and results are identical either way.
    pub sim_obs: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let limits = SessionLimits::default();
        ServerConfig {
            workers: 4,
            sim_threads: 1,
            cache_bytes: 256 << 20,
            scale: Scale::Full,
            session_ttl: limits.idle_ttl,
            max_sessions: limits.max_sessions,
            sim_obs: false,
        }
    }
}

/// Shared state of a running daemon. Handler threads hold an `Arc` of
/// this; job closures deliberately get only the [`ExecContext`] slice of
/// it (see [`Scheduler`] for why).
struct ServerState {
    exec: ExecContext,
    scheduler: Scheduler,
    shutdown: AtomicBool,
    addr: SocketAddr,
    registry: Registry,
}

impl ServerState {
    /// Flags shutdown and pokes the accept loop awake with a throwaway
    /// connection so it observes the flag immediately.
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }

    /// The daemon counters behind [`Response::Stats`]: the graph cache's
    /// own, with the session table's block filled in.
    fn daemon_stats(&self) -> CacheStats {
        let mut stats = self.exec.cache.lock().expect("cache poisoned").stats();
        let (sessions, session_bytes, session_evictions) = self.exec.sessions.usage();
        stats.sessions = sessions;
        stats.session_bytes = session_bytes;
        stats.session_evictions = session_evictions;
        stats
    }

    /// Refreshes the scrape-time resource gauges and renders the whole
    /// registry in Prometheus text-exposition format.
    fn render_metrics(&self) -> String {
        let stats = self.daemon_stats();
        self.exec.obs.set_resource_gauges(
            &stats,
            (stats.sessions, stats.session_bytes, stats.session_evictions),
        );
        self.registry.render_prometheus()
    }
}

/// Encodes and writes one response frame, recording the encode and
/// socket-write phases separately into the lifecycle histograms.
fn timed_write<M: Wire>(
    stream: &mut TcpStream,
    version: u8,
    msg: &M,
    obs: &ServiceObs,
) -> Result<(), ServiceError> {
    let mut watch = Stopwatch::start();
    let payload = crate::protocol::encode_payload(msg);
    obs.encode.observe(watch.lap_nanos());
    let outcome = crate::protocol::write_frame(stream, version, &payload);
    obs.write.observe(watch.elapsed_nanos());
    outcome
}

/// A running daemon, stoppable from the owning thread or via a client's
/// [`Request::Shutdown`].
pub struct Server {
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let registry = Registry::new();
        let state = Arc::new(ServerState {
            exec: ExecContext {
                cache: Arc::new(Mutex::new(GraphCache::new(cfg.cache_bytes))),
                sessions: Arc::new(SessionTable::with_limits(SessionLimits {
                    idle_ttl: cfg.session_ttl,
                    max_sessions: cfg.max_sessions.max(1),
                })),
                sim_threads: cfg.sim_threads.max(1),
                scale: cfg.scale,
                obs: ServiceObs::new(&registry),
                sim_obs: cfg.sim_obs.then(|| SimObs::new(&registry)),
            },
            scheduler: Scheduler::new(cfg.workers),
            shutdown: AtomicBool::new(false),
            addr: local,
            registry,
        });
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("arbodomd-accept".into())
            .spawn(move || accept_loop(&listener, &accept_state))?;
        Ok(Server {
            state,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// A handle to the daemon's metrics registry. Clones share storage,
    /// so a handle taken before [`Server::wait`] still reads the final
    /// counter values after shutdown — that is how the `arbodomd` binary
    /// prints its exit snapshot.
    pub fn registry(&self) -> Registry {
        self.state.registry.clone()
    }

    /// Refreshes the resource gauges and renders the current metrics in
    /// Prometheus text-exposition format — exactly what a
    /// [`Request::Metrics`] scrape returns.
    pub fn metrics_prometheus(&self) -> String {
        self.state.render_metrics()
    }

    /// Blocks until the daemon shuts down (via a client's `Shutdown`
    /// request). Used by the `arbodomd` binary.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting and joins the accept thread. Live connections
    /// finish their current batch and close on their own.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.accept.take() {
            self.state.request_shutdown();
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_state = Arc::clone(state);
        let _ = std::thread::Builder::new()
            .name("arbodomd-conn".into())
            .spawn(move || handle_connection(stream, &conn_state));
    }
    // Shutting down: refresh the resource gauges one last time so a
    // registry handle held across `Server::wait` reads final values
    // (the binary's exit snapshot).
    let _ = state.render_metrics();
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_nodelay(true);
    let mut pinned: Option<u8> = None;
    loop {
        let (frame_version, payload) = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(ServiceError::Closed) => return,
            Err(e) => {
                // Framing failed: the stream is desynced, so report once
                // (on whatever version we pinned, or the newest) and drop
                // the connection.
                let v = pinned.unwrap_or(PROTOCOL_MAX);
                let _ = write_message(&mut stream, v, &Response::Error(e.to_string()));
                return;
            }
        };
        // The first frame's version byte pins the connection.
        let version = match pinned {
            None => {
                if !(PROTOCOL_MIN..=PROTOCOL_MAX).contains(&frame_version) {
                    let _ = write_message(
                        &mut stream,
                        PROTOCOL_MAX,
                        &Response::UnsupportedVersion {
                            got: frame_version,
                            min: PROTOCOL_MIN,
                            max: PROTOCOL_MAX,
                        },
                    );
                    return;
                }
                pinned = Some(frame_version);
                frame_version
            }
            Some(v) if frame_version != v => {
                let _ = write_message(
                    &mut stream,
                    v,
                    &Response::Error(format!(
                        "connection pinned to protocol version {v}, frame carried {frame_version}"
                    )),
                );
                return;
            }
            Some(v) => v,
        };
        // The request clock starts when a complete frame is in hand —
        // time blocked waiting for the client is not request latency.
        let obs = &state.exec.obs;
        let watch = Stopwatch::start();
        let request = match decode_payload::<Request>(&payload) {
            Ok(request) => request,
            Err(e) => {
                let _ = write_message(&mut stream, version, &Response::Error(e.to_string()));
                return;
            }
        };
        obs.decode.observe(watch.elapsed_nanos());
        let kind = ReqKind::of(&request);
        // The session protocol is v2-only. Rejecting is typed and
        // non-fatal: the connection stays usable for v1 requests.
        if version < PROTOCOL_V2 && request.needs_v2() {
            let reply = Response::UnsupportedVersion {
                got: version,
                min: PROTOCOL_V2,
                max: PROTOCOL_MAX,
            };
            if write_message(&mut stream, version, &reply).is_err() {
                return;
            }
            continue;
        }
        let outcome = match request {
            Request::Ping => timed_write(&mut stream, version, &Response::Pong, obs),
            Request::Stats => {
                let stats = state.daemon_stats();
                timed_write(&mut stream, version, &Response::Stats(stats), obs)
            }
            Request::Shutdown => {
                let _ = timed_write(&mut stream, version, &Response::ShuttingDown, obs);
                obs.requests_total[kind as usize].inc();
                obs.request_nanos[kind as usize].observe(watch.elapsed_nanos());
                state.request_shutdown();
                return;
            }
            Request::Batch(jobs) => handle_batch(&mut stream, version, state, jobs),
            Request::Open(spec) => {
                let (id, outcome) = match guarded(&obs.panics, || open_session(&state.exec, &spec))
                {
                    Ok((id, result)) => {
                        obs.sessions_opened.inc();
                        (id, Ok(result))
                    }
                    Err(e) => (0, Err(e)),
                };
                timed_write(
                    &mut stream,
                    version,
                    &Response::Session { id, outcome },
                    obs,
                )
            }
            Request::Mutate {
                session,
                delta,
                policy,
            } => {
                let outcome = guarded(&obs.panics, || {
                    mutate_session(state, session, &delta, policy)
                });
                if let Ok(update) = &outcome {
                    obs.record_repair(update.repair.repaired);
                }
                timed_write(
                    &mut stream,
                    version,
                    &Response::Mutated {
                        id: session,
                        outcome,
                    },
                    obs,
                )
            }
            Request::Resolve { session } => {
                let outcome = guarded(&obs.panics, || resolve_session(state, session));
                if outcome.is_ok() {
                    obs.record_repair(false);
                }
                timed_write(
                    &mut stream,
                    version,
                    &Response::Mutated {
                        id: session,
                        outcome,
                    },
                    obs,
                )
            }
            Request::Release { session } => {
                let existed = state.exec.sessions.remove(session);
                timed_write(
                    &mut stream,
                    version,
                    &Response::Released {
                        id: session,
                        existed,
                    },
                    obs,
                )
            }
            Request::Metrics => {
                let text = state.render_metrics();
                timed_write(&mut stream, version, &Response::MetricsReport(text), obs)
            }
        };
        obs.requests_total[kind as usize].inc();
        obs.request_nanos[kind as usize].observe(watch.elapsed_nanos());
        if outcome.is_err() {
            return; // client went away mid-reply
        }
    }
}

/// Converts a panic inside a session operation into a deterministic
/// job-level error, exactly like batch workers do — the daemon must never
/// die on one bad request. Caught panics are counted in `panics`.
fn guarded<T>(panics: &Counter, op: impl FnOnce() -> Result<T, String>) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(op)).unwrap_or_else(|_| {
        panics.inc();
        Err("session operation panicked inside the server".to_string())
    })
}

fn mutate_session(
    state: &Arc<ServerState>,
    id: u64,
    delta: &DeltaSpec,
    policy: SessionPolicy,
) -> Result<SessionUpdate, String> {
    let session = state
        .exec
        .sessions
        .get(id)
        .map_err(|lost| lost.describe(id))?;
    let mut guard = session
        .lock()
        .map_err(|_| format!("session {id} was poisoned by an earlier panic"))?;
    let (result, repair) = guard.mutate(delta, policy, state.exec.sim_threads)?;
    // The graph just changed size: refresh the byte accounting (and
    // recency) while we still hold the session.
    state.exec.sessions.record_usage(id, guard.cost_bytes());
    Ok(SessionUpdate { result, repair })
}

fn resolve_session(state: &Arc<ServerState>, id: u64) -> Result<SessionUpdate, String> {
    let session = state
        .exec
        .sessions
        .get(id)
        .map_err(|lost| lost.describe(id))?;
    let mut guard = session
        .lock()
        .map_err(|_| format!("session {id} was poisoned by an earlier panic"))?;
    let (result, repair) = guard.resolve(state.exec.sim_threads)?;
    state.exec.sessions.record_usage(id, guard.cost_bytes());
    Ok(SessionUpdate { result, repair })
}

/// Fans a batch onto the scheduler and streams replies back in
/// submission order: completions arriving early are parked in a buffer
/// until their turn.
fn handle_batch(
    stream: &mut TcpStream,
    version: u8,
    state: &Arc<ServerState>,
    jobs: Vec<JobSpec>,
) -> Result<(), ServiceError> {
    let total = jobs.len() as u32;
    let (tx, rx) = mpsc::channel::<(u32, Result<JobResult, String>)>();
    for (index, job) in jobs.into_iter().enumerate() {
        let tx = tx.clone();
        let exec = state.exec.clone();
        let queued = Stopwatch::start();
        state.scheduler.spawn(move || {
            exec.obs.queue_wait.observe(queued.elapsed_nanos());
            // Every job sends exactly one reply, even if it panics —
            // otherwise the in-order writer below would stall forever on
            // the missing index. The message is fixed (not the panic
            // payload) to keep the response stream deterministic.
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute_job(&exec, &job)))
                    .unwrap_or_else(|_| {
                        exec.obs.panics.inc();
                        exec.obs.job_errors.inc();
                        Err("job panicked inside the worker".to_string())
                    });
            let _ = tx.send((index as u32, outcome));
        });
    }
    drop(tx);
    let obs = &state.exec.obs;
    let mut parked: BTreeMap<u32, Result<JobResult, String>> = BTreeMap::new();
    let mut next = 0u32;
    for (index, outcome) in rx {
        parked.insert(index, outcome);
        while let Some(outcome) = parked.remove(&next) {
            let mut reply = Response::Job {
                index: next,
                outcome,
            };
            let mut watch = Stopwatch::start();
            // A legal job can still produce an over-limit frame (a huge
            // member list): degrade that one job to a deterministic error
            // instead of killing the whole connection mid-batch.
            let mut payload = crate::protocol::encode_payload(&reply);
            if payload.len() > crate::protocol::MAX_FRAME_LEN {
                reply = Response::Job {
                    index: next,
                    outcome: Err(format!(
                        "result exceeds the {}-byte frame limit (retry without return_members)",
                        crate::protocol::MAX_FRAME_LEN
                    )),
                };
                payload = crate::protocol::encode_payload(&reply);
            }
            obs.encode.observe(watch.lap_nanos());
            crate::protocol::write_frame(stream, version, &payload)?;
            obs.write.observe(watch.elapsed_nanos());
            next += 1;
        }
    }
    debug_assert_eq!(next, total, "every job must be answered exactly once");
    timed_write(stream, version, &Response::BatchDone { jobs: total }, obs)
}
