//! Blocking client for `arbodomd` — used by the CLI, the load
//! generator, and the end-to-end tests.

use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    decode_payload, read_frame, write_message, CacheStats, DeltaSpec, JobResult, JobSpec, Request,
    Response, SessionPolicy, SessionUpdate, PROTOCOL_V2,
};
use crate::ServiceError;

/// One connection to a daemon. Requests are strictly sequential per
/// connection; open several clients for concurrency.
///
/// Every frame the client sends carries its protocol version byte; the
/// server pins the connection to the first one it sees. [`Client::connect`]
/// speaks the newest version ([`PROTOCOL_V2`]) — use
/// [`Client::connect_with_version`] to emulate an older client.
pub struct Client {
    stream: TcpStream,
    version: u8,
}

impl Client {
    /// Connects to a daemon speaking the newest protocol version.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        Self::connect_with_version(addr, PROTOCOL_V2)
    }

    /// Connects speaking an explicit protocol version (the first frame
    /// pins it server-side). Useful for compatibility testing; a version
    /// the server does not speak gets a typed
    /// [`ServiceError::UnsupportedVersion`] on the first request.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect_with_version(
        addr: impl ToSocketAddrs,
        version: u8,
    ) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream, version })
    }

    /// The protocol version this connection speaks.
    pub fn version(&self) -> u8 {
        self.version
    }

    fn read_response(&mut self) -> Result<Response, ServiceError> {
        let (_, payload) = read_frame(&mut self.stream)?;
        match decode_payload::<Response>(&payload)? {
            Response::Error(msg) => Err(ServiceError::Remote(msg)),
            Response::UnsupportedVersion { got, min, max } => {
                Err(ServiceError::UnsupportedVersion { got, min, max })
            }
            other => Ok(other),
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), ServiceError> {
        write_message(&mut self.stream, self.version, request)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn ping(&mut self) -> Result<(), ServiceError> {
        self.send(&Request::Ping)?;
        match self.read_response()? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Fetches the daemon's graph-cache counters.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn stats(&mut self) -> Result<CacheStats, ServiceError> {
        self.send(&Request::Stats)?;
        match self.read_response()? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Asks the daemon to shut down.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn shutdown_server(&mut self) -> Result<(), ServiceError> {
        self.send(&Request::Shutdown)?;
        match self.read_response()? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    /// Opens a session: solves `spec` and keeps the instance alive
    /// server-side. Returns the session id and the opening solve's
    /// result.
    ///
    /// # Errors
    ///
    /// Job-level failures (bad source, lossy cell, invalid initial
    /// solution) surface as [`ServiceError::Remote`] — no session was
    /// created. v1 connections get
    /// [`ServiceError::UnsupportedVersion`].
    pub fn open(&mut self, spec: &JobSpec) -> Result<(u64, JobResult), ServiceError> {
        self.send(&Request::Open(spec.clone()))?;
        match self.read_response()? {
            Response::Session { id, outcome } => match outcome {
                Ok(result) => Ok((id, result)),
                Err(msg) => Err(ServiceError::Remote(msg)),
            },
            other => Err(unexpected("Session", &other)),
        }
    }

    /// Applies an edge-delta batch to a session under `policy`.
    ///
    /// # Errors
    ///
    /// Job-level failures (unknown session, conflicting delta, failed
    /// fallback solve) surface as [`ServiceError::Remote`]; the session
    /// survives unless the message says otherwise.
    pub fn mutate(
        &mut self,
        session: u64,
        delta: &DeltaSpec,
        policy: SessionPolicy,
    ) -> Result<SessionUpdate, ServiceError> {
        self.send(&Request::Mutate {
            session,
            delta: delta.clone(),
            policy,
        })?;
        self.read_mutated(session)
    }

    /// Forces a certified full re-solve on a session's current graph,
    /// re-anchoring its drift estimate.
    ///
    /// # Errors
    ///
    /// Job-level failures surface as [`ServiceError::Remote`].
    pub fn resolve_session(&mut self, session: u64) -> Result<SessionUpdate, ServiceError> {
        self.send(&Request::Resolve { session })?;
        self.read_mutated(session)
    }

    fn read_mutated(&mut self, session: u64) -> Result<SessionUpdate, ServiceError> {
        match self.read_response()? {
            Response::Mutated { id, outcome } => {
                if id != session {
                    return Err(ServiceError::Protocol(format!(
                        "reply addresses session {id}, expected {session}"
                    )));
                }
                outcome.map_err(ServiceError::Remote)
            }
            other => Err(unexpected("Mutated", &other)),
        }
    }

    /// Releases a session (idempotent). Returns whether it existed.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn release(&mut self, session: u64) -> Result<bool, ServiceError> {
        self.send(&Request::Release { session })?;
        match self.read_response()? {
            Response::Released { id, existed } => {
                if id != session {
                    return Err(ServiceError::Protocol(format!(
                        "reply addresses session {id}, expected {session}"
                    )));
                }
                Ok(existed)
            }
            other => Err(unexpected("Released", &other)),
        }
    }

    /// Scrapes the daemon's metrics registry: returns the Prometheus
    /// text-exposition rendering (parse it with
    /// `arbodom_obs::prom::parse`). Protocol v2 only.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, an unexpected response, or
    /// [`ServiceError::UnsupportedVersion`] on a v1 connection.
    pub fn metrics(&mut self) -> Result<String, ServiceError> {
        self.send(&Request::Metrics)?;
        match self.read_response()? {
            Response::MetricsReport(text) => Ok(text),
            other => Err(unexpected("MetricsReport", &other)),
        }
    }

    /// Submits a batch and returns the **raw response frame payloads** in
    /// arrival order (every `Job` frame, then the `BatchDone` trailer).
    /// This is the byte stream the determinism tests compare (the frame
    /// version byte is constant per connection and excluded).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-reported connection error.
    pub fn submit_raw(&mut self, jobs: &[JobSpec]) -> Result<Vec<Vec<u8>>, ServiceError> {
        self.send(&Request::Batch(jobs.to_vec()))?;
        let mut frames = Vec::new();
        loop {
            let (_, payload) = read_frame(&mut self.stream)?;
            let done = match decode_payload::<Response>(&payload)? {
                Response::Error(msg) => return Err(ServiceError::Remote(msg)),
                Response::UnsupportedVersion { got, min, max } => {
                    return Err(ServiceError::UnsupportedVersion { got, min, max })
                }
                Response::BatchDone { .. } => true,
                Response::Job { .. } => false,
                other => return Err(unexpected("Job/BatchDone", &other)),
            };
            frames.push(payload);
            if done {
                return Ok(frames);
            }
        }
    }

    /// Submits a batch and returns one outcome per job, in submission
    /// order.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, a server-reported connection error, or
    /// a protocol violation (job indices out of order or miscounted).
    pub fn submit(
        &mut self,
        jobs: &[JobSpec],
    ) -> Result<Vec<Result<JobResult, String>>, ServiceError> {
        let frames = self.submit_raw(jobs)?;
        let mut outcomes = Vec::with_capacity(jobs.len());
        for payload in &frames {
            match decode_payload::<Response>(payload)? {
                Response::Job { index, outcome } => {
                    if index as usize != outcomes.len() {
                        return Err(ServiceError::Protocol(format!(
                            "job index {index} arrived out of order"
                        )));
                    }
                    outcomes.push(outcome);
                }
                Response::BatchDone { jobs: count } => {
                    if count as usize != outcomes.len() {
                        return Err(ServiceError::Protocol(format!(
                            "batch trailer counts {count} jobs, received {}",
                            outcomes.len()
                        )));
                    }
                }
                other => return Err(unexpected("Job/BatchDone", &other)),
            }
        }
        if outcomes.len() != jobs.len() {
            return Err(ServiceError::Protocol(format!(
                "submitted {} jobs, received {} replies",
                jobs.len(),
                outcomes.len()
            )));
        }
        Ok(outcomes)
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServiceError {
    ServiceError::Protocol(format!("expected {wanted}, got {got:?}"))
}
