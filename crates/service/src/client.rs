//! Blocking client for `arbodomd` — used by the CLI, the load
//! generator, and the end-to-end tests.
//!
//! [`Client`] is a reusable handle, not a bare socket: it remembers the
//! daemon's address, lazily (re)establishes its connection, and retries
//! requests the server shed with [`Response::Overloaded`] under a
//! bounded exponential-backoff-with-jitter policy that honors the
//! server's `retry_after_ms` hint. Configure it through
//! [`Client::builder`]:
//!
//! ```no_run
//! use arbodom_service::{Client, RetryPolicy};
//! use std::time::Duration;
//!
//! let mut client = Client::builder()
//!     .retries(8)
//!     .backoff(Duration::from_millis(10), Duration::from_secs(1))
//!     .connect("127.0.0.1:4310")?;
//! client.ping()?;
//! # Ok::<(), arbodom_service::ServiceError>(())
//! ```
//!
//! With `retries(0)` every shed surfaces immediately as
//! [`ServiceError::Overloaded`] — that is how the load generator counts
//! raw sheds instead of masking them.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    decode_payload, read_frame, write_message, CacheStats, DeltaSpec, JobResult, JobSpec, Request,
    Response, ServerLimits, SessionPolicy, SessionUpdate, PROTOCOL_MAX,
};
use crate::ServiceError;

/// How a [`Client`] retries requests shed by admission control.
///
/// The delay before attempt `k` (1-based) is
/// `clamp(max(base_backoff · 2^(k-1), retry_after_ms), ..=max_backoff)`,
/// then jittered uniformly into its upper half so synchronized clients
/// don't re-flood the server in lockstep.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = surface every shed).
    pub max_retries: u32,
    /// First-retry backoff (doubles per attempt).
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0,
        }
    }
}

/// Builder-style configuration for [`Client`].
#[derive(Clone, Debug)]
pub struct ClientBuilder {
    version: u8,
    retry: RetryPolicy,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        ClientBuilder {
            version: PROTOCOL_MAX,
            retry: RetryPolicy::default(),
        }
    }
}

impl ClientBuilder {
    /// A builder speaking the newest protocol version with the default
    /// retry policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Protocol version every frame of this client carries (the server
    /// pins the connection to the first one it sees).
    pub fn version(mut self, version: u8) -> Self {
        self.version = version;
        self
    }

    /// Maximum retries after a shed (0 surfaces every shed as
    /// [`ServiceError::Overloaded`]).
    pub fn retries(mut self, max_retries: u32) -> Self {
        self.retry.max_retries = max_retries;
        self
    }

    /// First-retry backoff and its ceiling.
    pub fn backoff(mut self, base: Duration, max: Duration) -> Self {
        self.retry.base_backoff = base;
        self.retry.max_backoff = max;
        self
    }

    /// Seed of the deterministic backoff jitter (distinct seeds decorrelate
    /// concurrent clients).
    pub fn jitter_seed(mut self, seed: u64) -> Self {
        self.retry.jitter_seed = seed;
        self
    }

    /// Full retry policy at once.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Resolves `addr` and establishes the first connection.
    ///
    /// # Errors
    ///
    /// Propagates resolution and socket errors.
    pub fn connect(self, addr: impl ToSocketAddrs) -> Result<Client, ServiceError> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            ServiceError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ))
        })?;
        // A nonzero xorshift state derived from the seed (0 is a fixed
        // point of xorshift, so fold in a constant).
        let rng = self.retry.jitter_seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut client = Client {
            addr,
            version: self.version,
            retry: self.retry,
            stream: None,
            rng: rng | 1,
        };
        client.ensure_connected()?;
        Ok(client)
    }
}

/// One logical connection to a daemon. Requests are strictly sequential
/// per client; open several clients for concurrency.
///
/// The handle survives server-side closes: a failed or shed-and-closed
/// connection is re-established on the next request. Shed requests
/// (typed [`Response::Overloaded`]) are retried per the configured
/// [`RetryPolicy`]; when the budget runs out the shed surfaces as
/// [`ServiceError::Overloaded`].
pub struct Client {
    addr: SocketAddr,
    version: u8,
    retry: RetryPolicy,
    stream: Option<TcpStream>,
    rng: u64,
}

impl Client {
    /// A [`ClientBuilder`] with defaults (newest protocol, 4 retries).
    pub fn builder() -> ClientBuilder {
        ClientBuilder::new()
    }

    /// Connects to a daemon speaking the newest protocol version with
    /// the default retry policy.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        Self::builder().connect(addr)
    }

    /// Connects speaking an explicit protocol version (the first frame
    /// pins it server-side). Useful for compatibility testing; a version
    /// the server does not speak gets a typed
    /// [`ServiceError::UnsupportedVersion`] on the first request.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect_with_version(
        addr: impl ToSocketAddrs,
        version: u8,
    ) -> Result<Self, ServiceError> {
        Self::builder().version(version).connect(addr)
    }

    /// The protocol version this connection speaks.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// The daemon address this handle reconnects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn ensure_connected(&mut self) -> Result<&mut TcpStream, ServiceError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            let _ = stream.set_nodelay(true);
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Drops the connection so the next request reconnects. Called on
    /// transport failures and on server replies whose contract closes
    /// the connection ([`Response::Error`]).
    fn disconnect(&mut self) {
        self.stream = None;
    }

    fn send(&mut self, request: &Request) -> Result<(), ServiceError> {
        let version = self.version;
        let stream = self.ensure_connected()?;
        write_message(stream, version, request).inspect_err(|_| self.disconnect())
    }

    fn recv(&mut self) -> Result<Response, ServiceError> {
        let stream = self.ensure_connected()?;
        let payload = match read_frame(stream) {
            Ok((_, payload)) => payload,
            Err(e) => {
                self.disconnect();
                return Err(e);
            }
        };
        match decode_payload::<Response>(&payload)? {
            Response::Error(msg) => {
                // `Error` closes the connection by contract; match it.
                self.disconnect();
                Err(ServiceError::Remote(msg))
            }
            Response::UnsupportedVersion { got, min, max } => {
                Err(ServiceError::UnsupportedVersion { got, min, max })
            }
            Response::Overloaded {
                retry_after_ms,
                queue_depth,
            } => Err(ServiceError::Overloaded {
                retry_after_ms,
                queue_depth,
            }),
            other => Ok(other),
        }
    }

    /// Next backoff delay for retry attempt `attempt` (1-based),
    /// honoring the server's hint.
    fn backoff_delay(&mut self, attempt: u32, hint_ms: u64) -> Duration {
        let base = (self.retry.base_backoff.as_millis() as u64).max(1);
        let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(16));
        let cap = (self.retry.max_backoff.as_millis() as u64).max(1);
        let ms = exp.max(hint_ms).clamp(1, cap);
        // xorshift64: deterministic per-client jitter into [ms/2, ms].
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        Duration::from_millis(ms / 2 + self.rng % (ms / 2 + 1))
    }

    /// One request/response exchange with overload retries.
    fn round_trip(&mut self, request: &Request) -> Result<Response, ServiceError> {
        let mut attempt = 0u32;
        loop {
            let outcome = self.send(request).and_then(|()| self.recv());
            match outcome {
                Err(ServiceError::Overloaded { retry_after_ms, .. })
                    if attempt < self.retry.max_retries =>
                {
                    attempt += 1;
                    std::thread::sleep(self.backoff_delay(attempt, retry_after_ms));
                }
                other => return other,
            }
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn ping(&mut self) -> Result<(), ServiceError> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Fetches the daemon's advertised protocol range and admission
    /// limits. Protocol v3 only.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, an unexpected response, or
    /// [`ServiceError::UnsupportedVersion`] on an older connection.
    pub fn hello(&mut self) -> Result<ServerLimits, ServiceError> {
        match self.round_trip(&Request::Hello)? {
            Response::Limits(limits) => Ok(limits),
            other => Err(unexpected("Limits", &other)),
        }
    }

    /// Fetches the daemon's graph-cache counters.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn stats(&mut self) -> Result<CacheStats, ServiceError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Asks the daemon to shut down.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn shutdown_server(&mut self) -> Result<(), ServiceError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    /// Opens a session: solves `spec` and keeps the instance alive
    /// server-side. Returns the session id and the opening solve's
    /// result.
    ///
    /// # Errors
    ///
    /// Job-level failures (bad source, lossy cell, invalid initial
    /// solution) surface as [`ServiceError::Remote`] — no session was
    /// created. v1 connections get
    /// [`ServiceError::UnsupportedVersion`]; an exhausted retry budget
    /// surfaces as [`ServiceError::Overloaded`].
    pub fn open(&mut self, spec: &JobSpec) -> Result<(u64, JobResult), ServiceError> {
        match self.round_trip(&Request::Open(spec.clone()))? {
            Response::Session { id, outcome } => match outcome {
                Ok(result) => Ok((id, result)),
                Err(msg) => Err(ServiceError::Remote(msg)),
            },
            other => Err(unexpected("Session", &other)),
        }
    }

    /// Applies an edge-delta batch to a session under `policy`.
    ///
    /// # Errors
    ///
    /// Job-level failures (unknown session, conflicting delta, failed
    /// fallback solve) surface as [`ServiceError::Remote`]; the session
    /// survives unless the message says otherwise.
    pub fn mutate(
        &mut self,
        session: u64,
        delta: &DeltaSpec,
        policy: SessionPolicy,
    ) -> Result<SessionUpdate, ServiceError> {
        let request = Request::Mutate {
            session,
            delta: delta.clone(),
            policy,
        };
        let reply = self.round_trip(&request)?;
        read_mutated(session, reply)
    }

    /// Forces a certified full re-solve on a session's current graph,
    /// re-anchoring its drift estimate.
    ///
    /// # Errors
    ///
    /// Job-level failures surface as [`ServiceError::Remote`].
    pub fn resolve_session(&mut self, session: u64) -> Result<SessionUpdate, ServiceError> {
        let reply = self.round_trip(&Request::Resolve { session })?;
        read_mutated(session, reply)
    }

    /// Releases a session (idempotent). Returns whether it existed.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn release(&mut self, session: u64) -> Result<bool, ServiceError> {
        match self.round_trip(&Request::Release { session })? {
            Response::Released { id, existed } => {
                if id != session {
                    return Err(ServiceError::Protocol(format!(
                        "reply addresses session {id}, expected {session}"
                    )));
                }
                Ok(existed)
            }
            other => Err(unexpected("Released", &other)),
        }
    }

    /// Scrapes the daemon's metrics registry: returns the Prometheus
    /// text-exposition rendering (parse it with
    /// `arbodom_obs::prom::parse`). Protocol v2 and newer.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, an unexpected response, or
    /// [`ServiceError::UnsupportedVersion`] on a v1 connection.
    pub fn metrics(&mut self) -> Result<String, ServiceError> {
        match self.round_trip(&Request::Metrics)? {
            Response::MetricsReport(text) => Ok(text),
            other => Err(unexpected("MetricsReport", &other)),
        }
    }

    /// Submits a batch and returns the **raw response frame payloads** in
    /// arrival order (every `Job` frame, then the `BatchDone` trailer).
    /// This is the byte stream the determinism tests compare (the frame
    /// version byte is constant per connection and excluded).
    ///
    /// A shed batch (typed `Overloaded` instead of the first `Job`
    /// frame) is retried under the client's [`RetryPolicy`]; nothing is
    /// executed server-side before the shed, so the retry is safe.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, a server-reported connection error, or
    /// [`ServiceError::Overloaded`] once the retry budget is exhausted.
    pub fn submit_raw(&mut self, jobs: &[JobSpec]) -> Result<Vec<Vec<u8>>, ServiceError> {
        let request = Request::Batch(jobs.to_vec());
        let mut attempt = 0u32;
        loop {
            match self.submit_raw_once(&request) {
                Err(ServiceError::Overloaded { retry_after_ms, .. })
                    if attempt < self.retry.max_retries =>
                {
                    attempt += 1;
                    std::thread::sleep(self.backoff_delay(attempt, retry_after_ms));
                }
                other => return other,
            }
        }
    }

    fn submit_raw_once(&mut self, request: &Request) -> Result<Vec<Vec<u8>>, ServiceError> {
        self.send(request)?;
        let mut frames = Vec::new();
        loop {
            let stream = self.ensure_connected()?;
            let payload = match read_frame(stream) {
                Ok((_, payload)) => payload,
                Err(e) => {
                    self.disconnect();
                    return Err(e);
                }
            };
            let done = match decode_payload::<Response>(&payload)? {
                Response::Error(msg) => {
                    self.disconnect();
                    return Err(ServiceError::Remote(msg));
                }
                Response::UnsupportedVersion { got, min, max } => {
                    return Err(ServiceError::UnsupportedVersion { got, min, max })
                }
                // The server sheds a batch *before* dispatching any of
                // it, so an `Overloaded` here means no partial results.
                Response::Overloaded {
                    retry_after_ms,
                    queue_depth,
                } => {
                    return Err(ServiceError::Overloaded {
                        retry_after_ms,
                        queue_depth,
                    })
                }
                Response::BatchDone { .. } => true,
                Response::Job { .. } => false,
                other => return Err(unexpected("Job/BatchDone", &other)),
            };
            frames.push(payload);
            if done {
                return Ok(frames);
            }
        }
    }

    /// Submits a batch and returns one outcome per job, in submission
    /// order.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, a server-reported connection error, or
    /// a protocol violation (job indices out of order or miscounted).
    pub fn submit(
        &mut self,
        jobs: &[JobSpec],
    ) -> Result<Vec<Result<JobResult, String>>, ServiceError> {
        let frames = self.submit_raw(jobs)?;
        let mut outcomes = Vec::with_capacity(jobs.len());
        for payload in &frames {
            match decode_payload::<Response>(payload)? {
                Response::Job { index, outcome } => {
                    if index as usize != outcomes.len() {
                        return Err(ServiceError::Protocol(format!(
                            "job index {index} arrived out of order"
                        )));
                    }
                    outcomes.push(outcome);
                }
                Response::BatchDone { jobs: count } => {
                    if count as usize != outcomes.len() {
                        return Err(ServiceError::Protocol(format!(
                            "batch trailer counts {count} jobs, received {}",
                            outcomes.len()
                        )));
                    }
                }
                other => return Err(unexpected("Job/BatchDone", &other)),
            }
        }
        if outcomes.len() != jobs.len() {
            return Err(ServiceError::Protocol(format!(
                "submitted {} jobs, received {} replies",
                jobs.len(),
                outcomes.len()
            )));
        }
        Ok(outcomes)
    }
}

fn read_mutated(session: u64, reply: Response) -> Result<SessionUpdate, ServiceError> {
    match reply {
        Response::Mutated { id, outcome } => {
            if id != session {
                return Err(ServiceError::Protocol(format!(
                    "reply addresses session {id}, expected {session}"
                )));
            }
            outcome.map_err(ServiceError::Remote)
        }
        other => Err(unexpected("Mutated", &other)),
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServiceError {
    ServiceError::Protocol(format!("expected {wanted}, got {got:?}"))
}
