//! Blocking client for `arbodomd` — used by the CLI, the load
//! generator, and the end-to-end tests.

use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    decode_payload, read_frame, write_message, CacheStats, JobResult, JobSpec, Request, Response,
};
use crate::ServiceError;

/// One connection to a daemon. Requests are strictly sequential per
/// connection; open several clients for concurrency.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    fn read_response(&mut self) -> Result<Response, ServiceError> {
        match decode_payload::<Response>(&read_frame(&mut self.stream)?)? {
            Response::Error(msg) => Err(ServiceError::Remote(msg)),
            other => Ok(other),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn ping(&mut self) -> Result<(), ServiceError> {
        write_message(&mut self.stream, &Request::Ping)?;
        match self.read_response()? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Fetches the daemon's graph-cache counters.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn stats(&mut self) -> Result<CacheStats, ServiceError> {
        write_message(&mut self.stream, &Request::Stats)?;
        match self.read_response()? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Asks the daemon to shut down.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response.
    pub fn shutdown_server(&mut self) -> Result<(), ServiceError> {
        write_message(&mut self.stream, &Request::Shutdown)?;
        match self.read_response()? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    /// Submits a batch and returns the **raw response frame payloads** in
    /// arrival order (every `Job` frame, then the `BatchDone` trailer).
    /// This is the byte stream the determinism tests compare.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-reported connection error.
    pub fn submit_raw(&mut self, jobs: &[JobSpec]) -> Result<Vec<Vec<u8>>, ServiceError> {
        write_message(&mut self.stream, &Request::Batch(jobs.to_vec()))?;
        let mut frames = Vec::new();
        loop {
            let payload = read_frame(&mut self.stream)?;
            let done = match decode_payload::<Response>(&payload)? {
                Response::Error(msg) => return Err(ServiceError::Remote(msg)),
                Response::BatchDone { .. } => true,
                Response::Job { .. } => false,
                other => return Err(unexpected("Job/BatchDone", &other)),
            };
            frames.push(payload);
            if done {
                return Ok(frames);
            }
        }
    }

    /// Submits a batch and returns one outcome per job, in submission
    /// order.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, a server-reported connection error, or
    /// a protocol violation (job indices out of order or miscounted).
    pub fn submit(
        &mut self,
        jobs: &[JobSpec],
    ) -> Result<Vec<Result<JobResult, String>>, ServiceError> {
        let frames = self.submit_raw(jobs)?;
        let mut outcomes = Vec::with_capacity(jobs.len());
        for payload in &frames {
            match decode_payload::<Response>(payload)? {
                Response::Job { index, outcome } => {
                    if index as usize != outcomes.len() {
                        return Err(ServiceError::Protocol(format!(
                            "job index {index} arrived out of order"
                        )));
                    }
                    outcomes.push(outcome);
                }
                Response::BatchDone { jobs: count } => {
                    if count as usize != outcomes.len() {
                        return Err(ServiceError::Protocol(format!(
                            "batch trailer counts {count} jobs, received {}",
                            outcomes.len()
                        )));
                    }
                }
                other => return Err(unexpected("Job/BatchDone", &other)),
            }
        }
        if outcomes.len() != jobs.len() {
            return Err(ServiceError::Protocol(format!(
                "submitted {} jobs, received {} replies",
                jobs.len(),
                outcomes.len()
            )));
        }
        Ok(outcomes)
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServiceError {
    ServiceError::Protocol(format!("expected {wanted}, got {got:?}"))
}
