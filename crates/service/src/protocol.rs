//! The `arbodomd` wire protocol: framing plus typed requests/responses.
//!
//! Every message is one **frame**: a 1-byte protocol version, a 4-byte
//! little-endian payload length, then the payload, which is the [`Wire`]
//! encoding of exactly one [`Request`] or [`Response`]. The payload
//! codecs are the same varint helpers the CONGEST simulator meters with
//! ([`arbodom_congest::wire`]), so the protocol inherits their
//! conformance contract: encodings round-trip, consume exactly their own
//! bytes, and fail on any strict prefix (checkable with
//! [`arbodom_congest::assert_wire_conformance`]).
//!
//! # Version negotiation
//!
//! The **first frame** of a connection pins its protocol version; every
//! later frame must carry the same byte. A version outside
//! [`PROTOCOL_MIN`]`..=`[`PROTOCOL_MAX`] is answered with a typed
//! [`Response::UnsupportedVersion`] and the connection closes. A v1
//! connection keeps the original batch-query surface; the **session
//! requests** ([`Request::Open`]/[`Request::Mutate`]/[`Request::Resolve`]
//! /[`Request::Release`]) and [`GraphSource::Session`] are v2-only — a
//! v1 client issuing them gets `UnsupportedVersion` (the connection
//! stays usable for v1 traffic). Protocol v3 adds the overload surface:
//! [`Request::Hello`] (answered with [`Response::Limits`] advertising
//! the daemon's [`ServerLimits`]) and the typed [`Response::Overloaded`]
//! shed reply. A v3 connection that trips admission control receives
//! `Overloaded` with a retry hint; older connections receive a plain
//! [`Response::Error`] instead, because they cannot decode the new tag.
//!
//! A conversation is strictly client-driven: the client writes one
//! request frame, the server answers with one or more response frames —
//! [`Response::Pong`]/[`Response::Stats`]/[`Response::ShuttingDown`] for
//! the control requests, one session-scoped reply for each session
//! request, and for a [`Request::Batch`] one [`Response::Job`] frame
//! **per job in submission order** followed by a [`Response::BatchDone`]
//! trailer. In-order delivery is what makes the response byte stream
//! deterministic: identical batches produce byte-identical response
//! streams at any server worker count.

use arbodom_congest::{
    get_bool, get_u32, get_u64, get_uvarint, put_bool, put_u32, put_u64, put_uvarint, Wire,
    WireError,
};
use arbodom_graph::weights::WeightModel;
use arbodom_scenarios::quality::RefKind;
use arbodom_scenarios::{Algorithm, Family};
use bytes::BytesMut;

use crate::ServiceError;
use std::io::{Read, Write};

/// Frame header size: a protocol-version byte followed by a `u32`
/// little-endian payload length.
pub const FRAME_HEADER_LEN: usize = 5;

/// Protocol v1: the original batch-query surface (`Ping`/`Batch`/
/// `Stats`/`Shutdown`).
pub const PROTOCOL_V1: u8 = 1;

/// Protocol v2: v1 plus the session surface (`Open`/`Mutate`/`Resolve`/
/// `Release` and [`GraphSource::Session`]).
pub const PROTOCOL_V2: u8 = 2;

/// Protocol v3: v2 plus the overload surface — [`Request::Hello`] /
/// [`Response::Limits`] limit discovery and the typed
/// [`Response::Overloaded`] shed reply.
pub const PROTOCOL_V3: u8 = 3;

/// Oldest protocol version the daemon speaks.
pub const PROTOCOL_MIN: u8 = PROTOCOL_V1;

/// Newest protocol version the daemon speaks.
pub const PROTOCOL_MAX: u8 = PROTOCOL_V3;

/// Hard cap on a frame payload; larger declared lengths are rejected
/// before any allocation so a corrupt or hostile header cannot balloon
/// memory.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Hard cap on jobs per batch.
pub const MAX_BATCH_JOBS: usize = 10_000;

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one frame: version byte, length header, payload.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads above [`MAX_FRAME_LEN`].
pub fn write_frame(w: &mut impl Write, version: u8, payload: &[u8]) -> Result<(), ServiceError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(ServiceError::FrameTooLarge(payload.len() as u64));
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0] = version;
    header[1..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame, returning its version byte and payload. The version
/// is **not** validated here — the connection layer decides whether to
/// pin it or answer [`Response::UnsupportedVersion`].
///
/// # Errors
///
/// Returns [`ServiceError::Closed`] on a clean EOF before the header,
/// [`ServiceError::FrameTooLarge`] for oversized declared lengths, and
/// I/O errors otherwise (including EOF mid-frame).
pub fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), ServiceError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut got = 0;
    while got < FRAME_HEADER_LEN {
        match r.read(&mut header[got..])? {
            0 if got == 0 => return Err(ServiceError::Closed),
            0 => {
                return Err(ServiceError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            k => got += k,
        }
    }
    let version = header[0];
    let len = u32::from_le_bytes(header[1..].try_into().expect("4 length bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ServiceError::FrameTooLarge(len as u64));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((version, payload))
}

/// Encodes one message into a standalone payload buffer.
pub fn encode_payload<M: Wire>(msg: &M) -> Vec<u8> {
    let mut buf = BytesMut::new();
    msg.encode(&mut buf);
    buf.to_vec()
}

/// Decodes one message from a payload, requiring full consumption.
///
/// # Errors
///
/// Returns [`ServiceError::Wire`] on malformed bytes and
/// [`ServiceError::Protocol`] when trailing bytes remain (a desynced or
/// corrupted stream).
pub fn decode_payload<M: Wire>(payload: &[u8]) -> Result<M, ServiceError> {
    let mut slice = payload;
    let msg = M::decode(&mut slice)?;
    if !slice.is_empty() {
        return Err(ServiceError::Protocol(format!(
            "{} trailing bytes after message",
            slice.len()
        )));
    }
    Ok(msg)
}

/// Writes one message as a frame carrying `version`.
///
/// # Errors
///
/// Propagates framing errors.
pub fn write_message<M: Wire>(
    w: &mut impl Write,
    version: u8,
    msg: &M,
) -> Result<(), ServiceError> {
    write_frame(w, version, &encode_payload(msg))
}

/// Reads one message from a frame, returning the frame's version byte
/// alongside it.
///
/// # Errors
///
/// Propagates framing and decoding errors.
pub fn read_message<M: Wire>(r: &mut impl Read) -> Result<(u8, M), ServiceError> {
    let (version, payload) = read_frame(r)?;
    Ok((version, decode_payload(&payload)?))
}

/// Incremental frame reassembly for nonblocking reads.
///
/// The reactor feeds whatever byte chunks the kernel hands it — single
/// bytes, half a header, three frames and a tail — into [`push`], and
/// pulls complete `(version, payload)` frames out of [`next_frame`].
/// The assembler is segmentation-oblivious: any split of the same byte
/// stream yields the same frame sequence (proptested in
/// `tests/frame_assembly.rs`).
///
/// [`push`]: FrameAssembler::push
/// [`next_frame`]: FrameAssembler::next_frame
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    start: usize,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a received chunk to the reassembly buffer.
    pub fn push(&mut self, chunk: &[u8]) {
        // Reclaim consumed prefix space before growing, so a long-lived
        // connection's buffer stays proportional to its unparsed tail.
        if self.start > 0 && (self.start == self.buf.len() || self.start >= 64 * 1024) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts the next complete frame, if one is fully buffered.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::FrameTooLarge`] as soon as a header
    /// declaring an oversized payload is visible — before the payload
    /// arrives or is allocated, so a hostile header cannot balloon
    /// memory. The assembler is poisoned-by-construction after that:
    /// the connection must be closed, matching [`read_frame`].
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, ServiceError> {
        let avail = &self.buf[self.start..];
        if avail.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let version = avail[0];
        let len = u32::from_le_bytes(avail[1..FRAME_HEADER_LEN].try_into().expect("4 len bytes"))
            as usize;
        if len > MAX_FRAME_LEN {
            return Err(ServiceError::FrameTooLarge(len as u64));
        }
        if avail.len() < FRAME_HEADER_LEN + len {
            return Ok(None);
        }
        let payload = avail[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len].to_vec();
        self.start += FRAME_HEADER_LEN + len;
        Ok(Some((version, payload)))
    }
}

// ---------------------------------------------------------------------------
// Scalar helpers over the congest codecs
// ---------------------------------------------------------------------------

fn put_f64(buf: &mut BytesMut, v: f64) {
    put_u64(buf, v.to_bits());
}

fn get_f64(buf: &mut &[u8]) -> Result<f64, WireError> {
    Ok(f64::from_bits(get_u64(buf)?))
}

fn put_usize(buf: &mut BytesMut, v: usize) {
    put_uvarint(buf, v as u64);
}

fn get_usize(buf: &mut &[u8]) -> Result<usize, WireError> {
    usize::try_from(get_uvarint(buf)?).map_err(|_| WireError::Invalid("usize out of range"))
}

fn put_string(buf: &mut BytesMut, s: &str) {
    put_usize(buf, s.len());
    buf.extend_from_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String, WireError> {
    let len = get_usize(buf)?;
    if len > buf.len() {
        return Err(WireError::Truncated);
    }
    let (head, tail) = buf.split_at(len);
    let s = std::str::from_utf8(head)
        .map_err(|_| WireError::Invalid("string is not UTF-8"))?
        .to_string();
    *buf = tail;
    Ok(s)
}

/// Guards a declared sequence length against the remaining buffer so a
/// corrupt count cannot trigger a huge allocation: every encoded element
/// occupies at least one byte.
fn get_seq_len(buf: &mut &[u8]) -> Result<usize, WireError> {
    let len = get_usize(buf)?;
    if len > buf.len() {
        return Err(WireError::Truncated);
    }
    Ok(len)
}

// ---------------------------------------------------------------------------
// Foreign enums (orphan rule: encode through helpers, not `Wire` impls)
// ---------------------------------------------------------------------------

fn put_weight_model(buf: &mut BytesMut, m: &WeightModel) {
    match m {
        WeightModel::Unit => buf.extend_from_slice(&[0]),
        WeightModel::Uniform { lo, hi } => {
            buf.extend_from_slice(&[1]);
            put_u64(buf, *lo);
            put_u64(buf, *hi);
        }
        WeightModel::Exponential { max_exp } => {
            buf.extend_from_slice(&[2]);
            put_u32(buf, *max_exp);
        }
        WeightModel::DegreeCorrelated => buf.extend_from_slice(&[3]),
        WeightModel::InverseDegree => buf.extend_from_slice(&[4]),
        _ => unreachable!("non-exhaustive WeightModel variant without a wire tag"),
    }
}

fn get_weight_model(buf: &mut &[u8]) -> Result<WeightModel, WireError> {
    match get_tag(buf)? {
        0 => Ok(WeightModel::Unit),
        1 => Ok(WeightModel::Uniform {
            lo: get_u64(buf)?,
            hi: get_u64(buf)?,
        }),
        2 => Ok(WeightModel::Exponential {
            max_exp: get_u32(buf)?,
        }),
        3 => Ok(WeightModel::DegreeCorrelated),
        4 => Ok(WeightModel::InverseDegree),
        _ => Err(WireError::Invalid("unknown weight-model tag")),
    }
}

fn put_family(buf: &mut BytesMut, f: &Family) {
    match f {
        Family::ForestUnion { alpha, keep } => {
            buf.extend_from_slice(&[0]);
            put_usize(buf, *alpha);
            put_f64(buf, *keep);
        }
        Family::PrefAttach { m_per_node } => {
            buf.extend_from_slice(&[1]);
            put_usize(buf, *m_per_node);
        }
        Family::PlantedDs {
            k_per_mille,
            extra_per_node,
        } => {
            buf.extend_from_slice(&[2]);
            put_usize(buf, *k_per_mille);
            put_usize(buf, *extra_per_node);
        }
        Family::Grid2d { torus } => {
            buf.extend_from_slice(&[3]);
            put_bool(buf, *torus);
        }
        Family::Gnp { avg_degree } => {
            buf.extend_from_slice(&[4]);
            put_f64(buf, *avg_degree);
        }
        Family::RandomTree => buf.extend_from_slice(&[5]),
        Family::RandomPlanar { diag_p } => {
            buf.extend_from_slice(&[6]);
            put_f64(buf, *diag_p);
        }
        Family::KTree { k } => {
            buf.extend_from_slice(&[7]);
            put_usize(buf, *k);
        }
        Family::PowerLawCapped { exponent, cap } => {
            buf.extend_from_slice(&[8]);
            put_f64(buf, *exponent);
            put_usize(buf, *cap);
        }
        Family::UnitDisk { avg_degree } => {
            buf.extend_from_slice(&[9]);
            put_f64(buf, *avg_degree);
        }
    }
}

fn get_family(buf: &mut &[u8]) -> Result<Family, WireError> {
    match get_tag(buf)? {
        0 => Ok(Family::ForestUnion {
            alpha: get_usize(buf)?,
            keep: get_f64(buf)?,
        }),
        1 => Ok(Family::PrefAttach {
            m_per_node: get_usize(buf)?,
        }),
        2 => Ok(Family::PlantedDs {
            k_per_mille: get_usize(buf)?,
            extra_per_node: get_usize(buf)?,
        }),
        3 => Ok(Family::Grid2d {
            torus: get_bool(buf)?,
        }),
        4 => Ok(Family::Gnp {
            avg_degree: get_f64(buf)?,
        }),
        5 => Ok(Family::RandomTree),
        6 => Ok(Family::RandomPlanar {
            diag_p: get_f64(buf)?,
        }),
        7 => Ok(Family::KTree { k: get_usize(buf)? }),
        8 => Ok(Family::PowerLawCapped {
            exponent: get_f64(buf)?,
            cap: get_usize(buf)?,
        }),
        9 => Ok(Family::UnitDisk {
            avg_degree: get_f64(buf)?,
        }),
        _ => Err(WireError::Invalid("unknown family tag")),
    }
}

fn put_algorithm(buf: &mut BytesMut, a: &Algorithm) {
    match a {
        Algorithm::Weighted { eps } => {
            buf.extend_from_slice(&[0]);
            put_f64(buf, *eps);
        }
        Algorithm::UnknownDelta { eps } => {
            buf.extend_from_slice(&[1]);
            put_f64(buf, *eps);
        }
        Algorithm::Randomized { t } => {
            buf.extend_from_slice(&[2]);
            put_usize(buf, *t);
        }
        Algorithm::General { k } => {
            buf.extend_from_slice(&[3]);
            put_usize(buf, *k);
        }
    }
}

fn get_algorithm(buf: &mut &[u8]) -> Result<Algorithm, WireError> {
    match get_tag(buf)? {
        0 => Ok(Algorithm::Weighted { eps: get_f64(buf)? }),
        1 => Ok(Algorithm::UnknownDelta { eps: get_f64(buf)? }),
        2 => Ok(Algorithm::Randomized { t: get_usize(buf)? }),
        3 => Ok(Algorithm::General { k: get_usize(buf)? }),
        _ => Err(WireError::Invalid("unknown algorithm tag")),
    }
}

fn put_ref_kind(buf: &mut BytesMut, r: RefKind) {
    buf.extend_from_slice(&[match r {
        RefKind::Exact => 0,
        RefKind::Planted => 1,
        RefKind::PackingLb => 2,
    }]);
}

fn get_ref_kind(buf: &mut &[u8]) -> Result<RefKind, WireError> {
    match get_tag(buf)? {
        0 => Ok(RefKind::Exact),
        1 => Ok(RefKind::Planted),
        2 => Ok(RefKind::PackingLb),
        _ => Err(WireError::Invalid("unknown reference-kind tag")),
    }
}

fn get_tag(buf: &mut &[u8]) -> Result<u8, WireError> {
    if buf.is_empty() {
        return Err(WireError::Truncated);
    }
    let (tag, tail) = buf.split_first().expect("non-empty");
    *buf = tail;
    Ok(*tag)
}

// ---------------------------------------------------------------------------
// Job specs
// ---------------------------------------------------------------------------

/// Where a job's graph comes from — the three ingestion paths of the
/// daemon.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSource {
    /// An explicit edge list shipped in the request.
    Inline {
        /// Number of nodes.
        n: u32,
        /// Undirected edges as `(u, v)` pairs.
        edges: Vec<(u32, u32)>,
        /// Node weights (`None` = all weight 1).
        weights: Option<Vec<u64>>,
    },
    /// A named generator run server-side: repeated queries with the same
    /// parameters and seed hit the graph cache.
    Generator {
        /// The graph family with its parameters.
        family: Family,
        /// Target node count.
        n: u32,
        /// Node-weight model applied after generation.
        weights: WeightModel,
        /// Structural RNG seed.
        seed: u64,
    },
    /// One cell of a registered scenario, addressed exactly as the matrix
    /// runner addresses it: the instance (graph, weights, loss, seed) is
    /// reproduced bit-for-bit via the scenario's derived cell seed.
    ScenarioCell {
        /// Registry name of the scenario.
        name: String,
        /// Index into the scenario's size sweep (at the server's scale).
        size_idx: u32,
        /// Index into the weight-model sweep.
        weight_idx: u32,
        /// Index into the loss sweep.
        loss_idx: u32,
        /// Seed replica index.
        seed_idx: u64,
    },
    /// The **current** graph of an open session (protocol v2). Session
    /// graphs mutate, so jobs over this source are never cached — the
    /// job snapshots the session state at execution time.
    Session {
        /// Session id returned by [`Response::Session`].
        id: u64,
    },
}

impl Wire for GraphSource {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            GraphSource::Inline { n, edges, weights } => {
                buf.extend_from_slice(&[0]);
                put_u32(buf, *n);
                put_usize(buf, edges.len());
                for &(u, v) in edges {
                    put_u32(buf, u);
                    put_u32(buf, v);
                }
                match weights {
                    None => put_bool(buf, false),
                    Some(ws) => {
                        put_bool(buf, true);
                        put_usize(buf, ws.len());
                        for &w in ws {
                            put_u64(buf, w);
                        }
                    }
                }
            }
            GraphSource::Generator {
                family,
                n,
                weights,
                seed,
            } => {
                buf.extend_from_slice(&[1]);
                put_family(buf, family);
                put_u32(buf, *n);
                put_weight_model(buf, weights);
                put_u64(buf, *seed);
            }
            GraphSource::ScenarioCell {
                name,
                size_idx,
                weight_idx,
                loss_idx,
                seed_idx,
            } => {
                buf.extend_from_slice(&[2]);
                put_string(buf, name);
                put_u32(buf, *size_idx);
                put_u32(buf, *weight_idx);
                put_u32(buf, *loss_idx);
                put_u64(buf, *seed_idx);
            }
            GraphSource::Session { id } => {
                buf.extend_from_slice(&[3]);
                put_u64(buf, *id);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match get_tag(buf)? {
            0 => {
                let n = get_u32(buf)?;
                let edge_count = get_seq_len(buf)?;
                let mut edges = Vec::with_capacity(edge_count);
                for _ in 0..edge_count {
                    edges.push((get_u32(buf)?, get_u32(buf)?));
                }
                let weights = if get_bool(buf)? {
                    let count = get_seq_len(buf)?;
                    let mut ws = Vec::with_capacity(count);
                    for _ in 0..count {
                        ws.push(get_u64(buf)?);
                    }
                    Some(ws)
                } else {
                    None
                };
                Ok(GraphSource::Inline { n, edges, weights })
            }
            1 => Ok(GraphSource::Generator {
                family: get_family(buf)?,
                n: get_u32(buf)?,
                weights: get_weight_model(buf)?,
                seed: get_u64(buf)?,
            }),
            2 => Ok(GraphSource::ScenarioCell {
                name: get_string(buf)?,
                size_idx: get_u32(buf)?,
                weight_idx: get_u32(buf)?,
                loss_idx: get_u32(buf)?,
                seed_idx: get_u64(buf)?,
            }),
            3 => Ok(GraphSource::Session { id: get_u64(buf)? }),
            _ => Err(WireError::Invalid("unknown graph-source tag")),
        }
    }
}

/// One dominating-set job: a graph source plus how to solve it.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// The graph to solve on.
    pub source: GraphSource,
    /// Algorithm override. `None` uses the registered scenario's algorithm
    /// for [`GraphSource::ScenarioCell`] jobs and Theorem 1.1 with
    /// ε = 0.2 for ad-hoc jobs.
    pub algorithm: Option<Algorithm>,
    /// Algorithm seed for ad-hoc jobs (scenario cells derive theirs).
    pub seed: u64,
    /// Whether the reply should carry the full member list.
    pub return_members: bool,
}

impl JobSpec {
    /// An ad-hoc job over `source` with the default algorithm and seed.
    pub fn new(source: GraphSource) -> Self {
        JobSpec {
            source,
            algorithm: None,
            seed: 0,
            return_members: false,
        }
    }
}

impl Wire for JobSpec {
    fn encode(&self, buf: &mut BytesMut) {
        self.source.encode(buf);
        match &self.algorithm {
            None => put_bool(buf, false),
            Some(a) => {
                put_bool(buf, true);
                put_algorithm(buf, a);
            }
        }
        put_u64(buf, self.seed);
        put_bool(buf, self.return_members);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(JobSpec {
            source: GraphSource::decode(buf)?,
            algorithm: if get_bool(buf)? {
                Some(get_algorithm(buf)?)
            } else {
                None
            },
            seed: get_u64(buf)?,
            return_members: get_bool(buf)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Session messages (protocol v2)
// ---------------------------------------------------------------------------

/// An edge-delta batch shipped over the wire: the inserts and deletes a
/// [`Request::Mutate`] applies to a session's graph. Validated
/// server-side against the session's current edge set (strict
/// [`arbodom_graph::GraphDelta`] semantics: inserting a present edge or
/// deleting an absent one is a job-level error).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaSpec {
    /// Edges to insert, as `(u, v)` pairs.
    pub inserts: Vec<(u32, u32)>,
    /// Edges to delete, as `(u, v)` pairs.
    pub deletes: Vec<(u32, u32)>,
}

fn put_edge_list(buf: &mut BytesMut, edges: &[(u32, u32)]) {
    put_usize(buf, edges.len());
    for &(u, v) in edges {
        put_u32(buf, u);
        put_u32(buf, v);
    }
}

fn get_edge_list(buf: &mut &[u8]) -> Result<Vec<(u32, u32)>, WireError> {
    let count = get_seq_len(buf)?;
    let mut edges = Vec::with_capacity(count);
    for _ in 0..count {
        edges.push((get_u32(buf)?, get_u32(buf)?));
    }
    Ok(edges)
}

impl Wire for DeltaSpec {
    fn encode(&self, buf: &mut BytesMut) {
        put_edge_list(buf, &self.inserts);
        put_edge_list(buf, &self.deletes);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(DeltaSpec {
            inserts: get_edge_list(buf)?,
            deletes: get_edge_list(buf)?,
        })
    }
}

/// How a [`Request::Mutate`] maintains the session's dominating set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SessionPolicy {
    /// Local incremental repair, with the certified full re-solve as a
    /// fallback when the drift bound trips.
    #[default]
    Repair,
    /// Force a full re-solve for this batch.
    Resolve,
}

impl Wire for SessionPolicy {
    fn encode(&self, buf: &mut BytesMut) {
        buf.extend_from_slice(&[match self {
            SessionPolicy::Repair => 0,
            SessionPolicy::Resolve => 1,
        }]);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match get_tag(buf)? {
            0 => Ok(SessionPolicy::Repair),
            1 => Ok(SessionPolicy::Resolve),
            _ => Err(WireError::Invalid("unknown session-policy tag")),
        }
    }
}

/// What the maintainer did for one mutation batch — the wire counterpart
/// of [`arbodom_core::repair::BatchOutcome`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RepairStats {
    /// `true` when local repair was kept; `false` when the batch ran the
    /// certified full re-solve (drift bound, batch budget, or
    /// [`SessionPolicy::Resolve`]).
    pub repaired: bool,
    /// Nodes the local repair added.
    pub added: u64,
    /// Nodes the local shrink pass retired as redundant.
    pub removed: u64,
    /// Touched vertices that had lost domination before the repair.
    pub undominated_before: u64,
    /// Maintained weight over the weight of the last full solve.
    pub drift_estimate: f64,
    /// Batches repaired since the last full solve.
    pub batches_since_solve: u64,
    /// Chain digest of the session's mutation history (base edge digest
    /// folded with every applied delta).
    pub chain: u64,
}

impl Wire for RepairStats {
    fn encode(&self, buf: &mut BytesMut) {
        put_bool(buf, self.repaired);
        put_u64(buf, self.added);
        put_u64(buf, self.removed);
        put_u64(buf, self.undominated_before);
        put_f64(buf, self.drift_estimate);
        put_u64(buf, self.batches_since_solve);
        put_u64(buf, self.chain);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(RepairStats {
            repaired: get_bool(buf)?,
            added: get_u64(buf)?,
            removed: get_u64(buf)?,
            undominated_before: get_u64(buf)?,
            drift_estimate: get_f64(buf)?,
            batches_since_solve: get_u64(buf)?,
            chain: get_u64(buf)?,
        })
    }
}

/// The successful outcome of a [`Request::Mutate`] or
/// [`Request::Resolve`]: the session's post-batch quality accounting
/// plus what the maintainer did to get there.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionUpdate {
    /// Quality-accounted state of the maintained set on the mutated
    /// graph (rounds = simulation rounds this batch spent: 0 when the
    /// local repair was kept).
    pub result: JobResult,
    /// Maintainer telemetry for the batch.
    pub repair: RepairStats,
}

impl Wire for SessionUpdate {
    fn encode(&self, buf: &mut BytesMut) {
        self.result.encode(buf);
        self.repair.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SessionUpdate {
            result: JobResult::decode(buf)?,
            repair: RepairStats::decode(buf)?,
        })
    }
}

fn put_outcome<T: Wire>(buf: &mut BytesMut, outcome: &Result<T, String>) {
    match outcome {
        Ok(value) => {
            put_bool(buf, true);
            value.encode(buf);
        }
        Err(msg) => {
            put_bool(buf, false);
            put_string(buf, msg);
        }
    }
}

fn get_outcome<T: Wire>(buf: &mut &[u8]) -> Result<Result<T, String>, WireError> {
    Ok(if get_bool(buf)? {
        Ok(T::decode(buf)?)
    } else {
        Err(get_string(buf)?)
    })
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A client → server message. The session requests (`Open`, `Mutate`,
/// `Resolve`, `Release`) are protocol-v2-only; a v1 connection issuing
/// them is answered with [`Response::UnsupportedVersion`].
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// A batch of jobs; answered with one [`Response::Job`] per job in
    /// submission order, then [`Response::BatchDone`].
    Batch(Vec<JobSpec>),
    /// Cache statistics probe; answered with [`Response::Stats`].
    Stats,
    /// Orderly daemon shutdown; answered with [`Response::ShuttingDown`].
    Shutdown,
    /// Solves the job and keeps the instance **alive server-side** as a
    /// session owning `(graph, solution, quality)` state; answered with
    /// [`Response::Session`].
    Open(JobSpec),
    /// Applies an edge-delta batch to a session's graph, maintaining the
    /// dominating set under `policy`; answered with
    /// [`Response::Mutated`].
    Mutate {
        /// Target session.
        session: u64,
        /// The edge batch to apply.
        delta: DeltaSpec,
        /// Repair-vs-resolve maintenance policy for this batch.
        policy: SessionPolicy,
    },
    /// Forces a certified full re-solve on a session's current graph,
    /// re-anchoring its drift estimate; answered with
    /// [`Response::Mutated`].
    Resolve {
        /// Target session.
        session: u64,
    },
    /// Drops a session and frees its owned state; answered with
    /// [`Response::Released`] (idempotent).
    Release {
        /// Target session.
        session: u64,
    },
    /// Scrapes the daemon's metrics registry; answered with
    /// [`Response::MetricsReport`] carrying the Prometheus
    /// text-exposition rendering. Protocol v2 only.
    Metrics,
    /// Asks the daemon to advertise its admission limits; answered with
    /// [`Response::Limits`]. Protocol v3 only.
    Hello,
}

impl Request {
    /// Whether this request is gated behind protocol v2: the session
    /// requests, and batches whose jobs address session snapshots. The
    /// server answers v2-only requests on a v1 connection with
    /// [`Response::UnsupportedVersion`] and keeps the connection open.
    pub fn needs_v2(&self) -> bool {
        match self {
            Request::Open(_)
            | Request::Mutate { .. }
            | Request::Resolve { .. }
            | Request::Release { .. }
            | Request::Metrics => true,
            Request::Batch(jobs) => jobs
                .iter()
                .any(|job| matches!(job.source, GraphSource::Session { .. })),
            Request::Ping | Request::Stats | Request::Shutdown | Request::Hello => false,
        }
    }

    /// Whether this request is gated behind protocol v3 (the overload
    /// surface). Answered on older connections with
    /// [`Response::UnsupportedVersion`], connection kept open — the same
    /// contract as [`needs_v2`](Request::needs_v2).
    pub fn needs_v3(&self) -> bool {
        matches!(self, Request::Hello)
    }
}

impl Wire for Request {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Request::Ping => buf.extend_from_slice(&[0]),
            Request::Batch(jobs) => {
                buf.extend_from_slice(&[1]);
                put_usize(buf, jobs.len());
                for job in jobs {
                    job.encode(buf);
                }
            }
            Request::Stats => buf.extend_from_slice(&[2]),
            Request::Shutdown => buf.extend_from_slice(&[3]),
            Request::Open(spec) => {
                buf.extend_from_slice(&[4]);
                spec.encode(buf);
            }
            Request::Mutate {
                session,
                delta,
                policy,
            } => {
                buf.extend_from_slice(&[5]);
                put_u64(buf, *session);
                delta.encode(buf);
                policy.encode(buf);
            }
            Request::Resolve { session } => {
                buf.extend_from_slice(&[6]);
                put_u64(buf, *session);
            }
            Request::Release { session } => {
                buf.extend_from_slice(&[7]);
                put_u64(buf, *session);
            }
            Request::Metrics => buf.extend_from_slice(&[8]),
            Request::Hello => buf.extend_from_slice(&[9]),
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match get_tag(buf)? {
            0 => Ok(Request::Ping),
            1 => {
                let count = get_seq_len(buf)?;
                if count > MAX_BATCH_JOBS {
                    return Err(WireError::Invalid("batch exceeds MAX_BATCH_JOBS"));
                }
                let mut jobs = Vec::with_capacity(count);
                for _ in 0..count {
                    jobs.push(JobSpec::decode(buf)?);
                }
                Ok(Request::Batch(jobs))
            }
            2 => Ok(Request::Stats),
            3 => Ok(Request::Shutdown),
            4 => Ok(Request::Open(JobSpec::decode(buf)?)),
            5 => Ok(Request::Mutate {
                session: get_u64(buf)?,
                delta: DeltaSpec::decode(buf)?,
                policy: SessionPolicy::decode(buf)?,
            }),
            6 => Ok(Request::Resolve {
                session: get_u64(buf)?,
            }),
            7 => Ok(Request::Release {
                session: get_u64(buf)?,
            }),
            8 => Ok(Request::Metrics),
            9 => Ok(Request::Hello),
            _ => Err(WireError::Invalid("unknown request tag")),
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// The measured outcome of one job — the service counterpart of a
/// scenario [`arbodom_scenarios::CellReport`] row.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// Nodes in the solved graph.
    pub n: u64,
    /// Edges in the solved graph.
    pub m: u64,
    /// Maximum degree Δ.
    pub max_degree: u64,
    /// The arboricity parameter the algorithm ran with.
    pub alpha: u64,
    /// [`arbodom_graph::digest::edge_digest`] of the instance (also the
    /// graph-cache key).
    pub graph_digest: u64,
    /// Nodes in the computed dominating set.
    pub ds_size: u64,
    /// Weight of the computed dominating set.
    pub ds_weight: u64,
    /// Whether the output is a dominating set.
    pub valid: bool,
    /// Number of undominated nodes (0 when `valid`).
    pub undominated: u64,
    /// Reference kind of the certified ratio.
    pub reference: RefKind,
    /// Reference value the ratio is measured against.
    pub opt_estimate: f64,
    /// `ds_weight / opt_estimate`, unclamped.
    pub ratio: f64,
    /// The theorem bound for this parameterization.
    pub guarantee: f64,
    /// Whether `ratio <= guarantee`.
    pub within_guarantee: bool,
    /// Quality-accounting alarm (see [`arbodom_scenarios::quality`]).
    pub flagged: bool,
    /// Executed CONGEST rounds.
    pub rounds: u64,
    /// The round budget of the theorem's complexity statement.
    pub round_budget: u64,
    /// Messages delivered by the simulator.
    pub messages: u64,
    /// Payload bits delivered.
    pub total_bits: u64,
    /// Largest single message in bits.
    pub max_message_bits: u64,
    /// Messages exceeding the CONGEST bandwidth budget.
    pub budget_violations: u64,
    /// Messages dropped by fault injection.
    pub dropped_messages: u64,
    /// The dominating set itself, when the job asked for it.
    pub members: Option<Vec<u32>>,
}

impl Wire for JobResult {
    fn encode(&self, buf: &mut BytesMut) {
        for v in [
            self.n,
            self.m,
            self.max_degree,
            self.alpha,
            self.graph_digest,
            self.ds_size,
            self.ds_weight,
        ] {
            put_u64(buf, v);
        }
        put_bool(buf, self.valid);
        put_u64(buf, self.undominated);
        put_ref_kind(buf, self.reference);
        put_f64(buf, self.opt_estimate);
        put_f64(buf, self.ratio);
        put_f64(buf, self.guarantee);
        put_bool(buf, self.within_guarantee);
        put_bool(buf, self.flagged);
        for v in [
            self.rounds,
            self.round_budget,
            self.messages,
            self.total_bits,
            self.max_message_bits,
            self.budget_violations,
            self.dropped_messages,
        ] {
            put_u64(buf, v);
        }
        match &self.members {
            None => put_bool(buf, false),
            Some(ms) => {
                put_bool(buf, true);
                put_usize(buf, ms.len());
                for &v in ms {
                    put_u32(buf, v);
                }
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(JobResult {
            n: get_u64(buf)?,
            m: get_u64(buf)?,
            max_degree: get_u64(buf)?,
            alpha: get_u64(buf)?,
            graph_digest: get_u64(buf)?,
            ds_size: get_u64(buf)?,
            ds_weight: get_u64(buf)?,
            valid: get_bool(buf)?,
            undominated: get_u64(buf)?,
            reference: get_ref_kind(buf)?,
            opt_estimate: get_f64(buf)?,
            ratio: get_f64(buf)?,
            guarantee: get_f64(buf)?,
            within_guarantee: get_bool(buf)?,
            flagged: get_bool(buf)?,
            rounds: get_u64(buf)?,
            round_budget: get_u64(buf)?,
            messages: get_u64(buf)?,
            total_bits: get_u64(buf)?,
            max_message_bits: get_u64(buf)?,
            budget_violations: get_u64(buf)?,
            dropped_messages: get_u64(buf)?,
            members: if get_bool(buf)? {
                let count = get_seq_len(buf)?;
                let mut ms = Vec::with_capacity(count);
                for _ in 0..count {
                    ms.push(get_u32(buf)?);
                }
                Some(ms)
            } else {
                None
            },
        })
    }
}

/// Aggregate daemon counters served by [`Request::Stats`]: the graph
/// cache's, plus the session table's live count / resident bytes /
/// evictions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Graphs currently cached.
    pub entries: u64,
    /// Byte budget the LRU evicts down to.
    pub capacity: u64,
    /// Bytes currently held ([`arbodom_graph::MemoryFootprint`] totals
    /// of the cached instances).
    pub bytes: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the graph.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Live sessions in the daemon's session table.
    pub sessions: u64,
    /// Resident bytes of those sessions (owned graphs plus maintained
    /// sets).
    pub session_bytes: u64,
    /// Sessions evicted by policy so far (idle TTL or session cap).
    pub session_evictions: u64,
}

impl Wire for CacheStats {
    fn encode(&self, buf: &mut BytesMut) {
        for v in [
            self.entries,
            self.capacity,
            self.bytes,
            self.hits,
            self.misses,
            self.evictions,
            self.sessions,
            self.session_bytes,
            self.session_evictions,
        ] {
            put_u64(buf, v);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(CacheStats {
            entries: get_u64(buf)?,
            capacity: get_u64(buf)?,
            bytes: get_u64(buf)?,
            hits: get_u64(buf)?,
            misses: get_u64(buf)?,
            evictions: get_u64(buf)?,
            sessions: get_u64(buf)?,
            session_bytes: get_u64(buf)?,
            session_evictions: get_u64(buf)?,
        })
    }
}

/// The daemon's advertised admission limits, answered to
/// [`Request::Hello`] on protocol v3.
///
/// A well-behaved client sizes its pipelining to `per_conn_inflight`
/// and backs off per [`Response::Overloaded`] retry hints; the limits
/// are advisory (the server enforces them regardless) but let clients
/// avoid sheds instead of reacting to them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerLimits {
    /// Oldest protocol version the daemon speaks.
    pub protocol_min: u8,
    /// Newest protocol version the daemon speaks.
    pub protocol_max: u8,
    /// Scheduler worker threads executing jobs.
    pub workers: u64,
    /// Global cap on admitted-but-unfinished jobs.
    pub max_pending_jobs: u64,
    /// Global cap on admitted-but-unfinished request payload bytes.
    pub max_pending_bytes: u64,
    /// Per-connection cap on queued + executing requests.
    pub per_conn_inflight: u64,
    /// Idle connection timeout in milliseconds (0 = disabled).
    pub idle_timeout_ms: u64,
    /// Largest frame payload the daemon accepts.
    pub max_frame_len: u64,
    /// Largest job count per batch request.
    pub max_batch_jobs: u64,
}

impl Wire for ServerLimits {
    fn encode(&self, buf: &mut BytesMut) {
        buf.extend_from_slice(&[self.protocol_min, self.protocol_max]);
        for v in [
            self.workers,
            self.max_pending_jobs,
            self.max_pending_bytes,
            self.per_conn_inflight,
            self.idle_timeout_ms,
            self.max_frame_len,
            self.max_batch_jobs,
        ] {
            put_u64(buf, v);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ServerLimits {
            protocol_min: get_tag(buf)?,
            protocol_max: get_tag(buf)?,
            workers: get_u64(buf)?,
            max_pending_jobs: get_u64(buf)?,
            max_pending_bytes: get_u64(buf)?,
            per_conn_inflight: get_u64(buf)?,
            idle_timeout_ms: get_u64(buf)?,
            max_frame_len: get_u64(buf)?,
            max_batch_jobs: get_u64(buf)?,
        })
    }
}

/// A server → client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// One job's outcome; `index` is the job's position in its batch.
    Job {
        /// Position of the job in the submitted batch.
        index: u32,
        /// The result, or a job-level error message.
        outcome: Result<JobResult, String>,
    },
    /// Batch trailer: all `jobs` job frames have been sent.
    BatchDone {
        /// Number of jobs answered.
        jobs: u32,
    },
    /// Answer to [`Request::Stats`].
    Stats(CacheStats),
    /// Answer to [`Request::Shutdown`]: the daemon is stopping.
    ShuttingDown,
    /// Connection-level protocol error (the server closes afterwards).
    Error(String),
    /// Answer to [`Request::Open`]: the session id and the initial
    /// solve's result (`id` is 0 when the open failed).
    Session {
        /// Identifier for later `Mutate`/`Resolve`/`Release` requests.
        id: u64,
        /// The initial solve, or a job-level error.
        outcome: Result<JobResult, String>,
    },
    /// Answer to [`Request::Mutate`] and [`Request::Resolve`].
    Mutated {
        /// The session the batch was applied to.
        id: u64,
        /// Post-batch state, or a job-level error (unknown session,
        /// delta conflict, failed re-solve — the session survives except
        /// where the error says otherwise).
        outcome: Result<SessionUpdate, String>,
    },
    /// Answer to [`Request::Release`].
    Released {
        /// The released session.
        id: u64,
        /// Whether the session existed (`false` makes release
        /// idempotent instead of an error).
        existed: bool,
    },
    /// Answer to [`Request::Metrics`]: the daemon's whole metrics
    /// registry rendered in Prometheus text-exposition format
    /// (parseable with `arbodom_obs::prom::parse`).
    MetricsReport(String),
    /// The connection's pinned version cannot serve the request — either
    /// the first frame carried a version outside the supported range
    /// (the connection closes), or a v1 connection issued a v2-only
    /// session request (the connection stays open).
    UnsupportedVersion {
        /// The version byte the client sent.
        got: u8,
        /// Oldest version the daemon speaks.
        min: u8,
        /// Newest version the daemon speaks.
        max: u8,
    },
    /// Admission control shed this request (protocol v3 connections
    /// only; older connections receive [`Response::Error`]). The request
    /// was **not** executed; the connection stays open.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
        /// Admitted-but-unfinished jobs at shed time (load signal).
        queue_depth: u64,
    },
    /// Answer to [`Request::Hello`]: the daemon's admission limits.
    Limits(ServerLimits),
}

impl Wire for Response {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Response::Pong => buf.extend_from_slice(&[0]),
            Response::Job { index, outcome } => {
                buf.extend_from_slice(&[1]);
                put_u32(buf, *index);
                put_outcome(buf, outcome);
            }
            Response::BatchDone { jobs } => {
                buf.extend_from_slice(&[2]);
                put_u32(buf, *jobs);
            }
            Response::Stats(stats) => {
                buf.extend_from_slice(&[3]);
                stats.encode(buf);
            }
            Response::ShuttingDown => buf.extend_from_slice(&[4]),
            Response::Error(msg) => {
                buf.extend_from_slice(&[5]);
                put_string(buf, msg);
            }
            Response::Session { id, outcome } => {
                buf.extend_from_slice(&[6]);
                put_u64(buf, *id);
                put_outcome(buf, outcome);
            }
            Response::Mutated { id, outcome } => {
                buf.extend_from_slice(&[7]);
                put_u64(buf, *id);
                put_outcome(buf, outcome);
            }
            Response::Released { id, existed } => {
                buf.extend_from_slice(&[8]);
                put_u64(buf, *id);
                put_bool(buf, *existed);
            }
            Response::UnsupportedVersion { got, min, max } => {
                buf.extend_from_slice(&[9, *got, *min, *max]);
            }
            Response::MetricsReport(text) => {
                buf.extend_from_slice(&[10]);
                put_string(buf, text);
            }
            Response::Overloaded {
                retry_after_ms,
                queue_depth,
            } => {
                buf.extend_from_slice(&[11]);
                put_u64(buf, *retry_after_ms);
                put_u64(buf, *queue_depth);
            }
            Response::Limits(limits) => {
                buf.extend_from_slice(&[12]);
                limits.encode(buf);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match get_tag(buf)? {
            0 => Ok(Response::Pong),
            1 => Ok(Response::Job {
                index: get_u32(buf)?,
                outcome: get_outcome(buf)?,
            }),
            2 => Ok(Response::BatchDone {
                jobs: get_u32(buf)?,
            }),
            3 => Ok(Response::Stats(CacheStats::decode(buf)?)),
            4 => Ok(Response::ShuttingDown),
            5 => Ok(Response::Error(get_string(buf)?)),
            6 => Ok(Response::Session {
                id: get_u64(buf)?,
                outcome: get_outcome(buf)?,
            }),
            7 => Ok(Response::Mutated {
                id: get_u64(buf)?,
                outcome: get_outcome(buf)?,
            }),
            8 => Ok(Response::Released {
                id: get_u64(buf)?,
                existed: get_bool(buf)?,
            }),
            9 => Ok(Response::UnsupportedVersion {
                got: get_tag(buf)?,
                min: get_tag(buf)?,
                max: get_tag(buf)?,
            }),
            10 => Ok(Response::MetricsReport(get_string(buf)?)),
            11 => Ok(Response::Overloaded {
                retry_after_ms: get_u64(buf)?,
                queue_depth: get_u64(buf)?,
            }),
            12 => Ok(Response::Limits(ServerLimits::decode(buf)?)),
            _ => Err(WireError::Invalid("unknown response tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbodom_congest::assert_wire_conformance;

    #[test]
    fn control_messages_conform() {
        assert_wire_conformance(&Request::Ping);
        assert_wire_conformance(&Request::Stats);
        assert_wire_conformance(&Request::Shutdown);
        assert_wire_conformance(&Response::Pong);
        assert_wire_conformance(&Response::ShuttingDown);
        assert_wire_conformance(&Response::BatchDone { jobs: 17 });
        assert_wire_conformance(&Response::Error("bad frame".into()));
        assert_wire_conformance(&Response::Stats(CacheStats {
            entries: 3,
            capacity: 64 << 20,
            bytes: 1 << 20,
            hits: 10,
            misses: 4,
            evictions: 1,
            sessions: 2,
            session_bytes: 4096,
            session_evictions: 5,
        }));
    }

    #[test]
    fn session_messages_conform() {
        assert_wire_conformance(&Request::Mutate {
            session: 42,
            delta: DeltaSpec {
                inserts: vec![(0, 3), (1, 2)],
                deletes: vec![(0, 1)],
            },
            policy: SessionPolicy::Repair,
        });
        assert_wire_conformance(&Request::Resolve { session: 7 });
        assert_wire_conformance(&Request::Release { session: 7 });
        assert_wire_conformance(&Response::Released {
            id: 7,
            existed: true,
        });
        assert_wire_conformance(&Response::Mutated {
            id: 7,
            outcome: Err("unknown session".into()),
        });
        assert_wire_conformance(&Response::UnsupportedVersion {
            got: 9,
            min: PROTOCOL_MIN,
            max: PROTOCOL_MAX,
        });
    }

    #[test]
    fn metrics_messages_conform_and_are_v2_only() {
        assert_wire_conformance(&Request::Metrics);
        assert_wire_conformance(&Response::MetricsReport(
            "# TYPE arbodom_jobs_total counter\narbodom_jobs_total 3\n".into(),
        ));
        assert!(Request::Metrics.needs_v2());
        assert!(!Request::Ping.needs_v2());
    }

    #[test]
    fn overload_messages_conform_and_are_v3_only() {
        assert_wire_conformance(&Request::Hello);
        assert_wire_conformance(&Response::Overloaded {
            retry_after_ms: 120,
            queue_depth: 37,
        });
        assert_wire_conformance(&Response::Limits(ServerLimits {
            protocol_min: PROTOCOL_MIN,
            protocol_max: PROTOCOL_MAX,
            workers: 4,
            max_pending_jobs: 256,
            max_pending_bytes: 64 << 20,
            per_conn_inflight: 16,
            idle_timeout_ms: 60_000,
            max_frame_len: MAX_FRAME_LEN as u64,
            max_batch_jobs: MAX_BATCH_JOBS as u64,
        }));
        assert!(Request::Hello.needs_v3());
        assert!(!Request::Hello.needs_v2(), "hello is not session-gated");
        assert!(!Request::Metrics.needs_v3());
        assert!(!Request::Ping.needs_v3());
    }

    #[test]
    fn frame_assembler_reassembles_byte_by_byte() {
        let mut wire = Vec::new();
        write_message(&mut wire, PROTOCOL_V3, &Request::Hello).unwrap();
        write_message(&mut wire, PROTOCOL_V3, &Request::Ping).unwrap();
        let mut assembler = FrameAssembler::new();
        let mut frames = Vec::new();
        for &b in &wire {
            assembler.push(&[b]);
            while let Some(frame) = assembler.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(assembler.buffered(), 0);
        assert_eq!(frames[0].0, PROTOCOL_V3);
        assert_eq!(
            decode_payload::<Request>(&frames[0].1).unwrap(),
            Request::Hello
        );
        assert_eq!(
            decode_payload::<Request>(&frames[1].1).unwrap(),
            Request::Ping
        );
    }

    #[test]
    fn frame_assembler_rejects_oversized_headers_before_the_payload_arrives() {
        let mut header = [0u8; FRAME_HEADER_LEN];
        header[0] = PROTOCOL_V3;
        header[1..].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut assembler = FrameAssembler::new();
        assembler.push(&header);
        assert!(matches!(
            assembler.next_frame(),
            Err(ServiceError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn framing_roundtrips_and_carries_the_version_byte() {
        let mut wire = Vec::new();
        write_message(&mut wire, PROTOCOL_V2, &Request::Ping).unwrap();
        write_message(&mut wire, PROTOCOL_V1, &Request::Stats).unwrap();
        let mut reader = wire.as_slice();
        assert_eq!(
            read_message::<Request>(&mut reader).unwrap(),
            (PROTOCOL_V2, Request::Ping)
        );
        assert_eq!(
            read_message::<Request>(&mut reader).unwrap(),
            (PROTOCOL_V1, Request::Stats)
        );
        assert!(matches!(
            read_message::<Request>(&mut reader),
            Err(ServiceError::Closed)
        ));
    }

    #[test]
    fn oversized_frame_header_rejected_before_allocation() {
        let mut header = [0u8; FRAME_HEADER_LEN];
        header[0] = PROTOCOL_V2;
        header[1..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut header.as_slice()),
            Err(ServiceError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn truncated_frame_body_is_an_error() {
        let mut wire = Vec::new();
        write_message(&mut wire, PROTOCOL_V2, &Request::Shutdown).unwrap();
        wire.pop(); // header still declares 1 payload byte
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(ServiceError::Io(_))
        ));
    }

    #[test]
    fn truncated_frame_headers_are_errors_not_hangs() {
        // Every strict prefix of a valid header: clean close on zero
        // bytes, UnexpectedEof inside the header otherwise.
        let mut wire = Vec::new();
        write_message(&mut wire, PROTOCOL_V2, &Request::Ping).unwrap();
        for keep in 0..FRAME_HEADER_LEN {
            let result = read_frame(&mut &wire[..keep]);
            if keep == 0 {
                assert!(matches!(result, Err(ServiceError::Closed)));
            } else {
                assert!(matches!(result, Err(ServiceError::Io(_))), "prefix {keep}");
            }
        }
    }

    #[test]
    fn trailing_bytes_after_message_rejected() {
        let mut payload = encode_payload(&Request::Ping);
        payload.push(0);
        assert!(matches!(
            decode_payload::<Request>(&payload),
            Err(ServiceError::Protocol(_))
        ));
    }
}
