//! The daemon's graph cache: byte-budgeted LRU over built instances,
//! keyed by [`arbodom_graph::digest::edge_digest`] folded with the
//! instance's metadata (α, planted set).
//!
//! Building a graph (generator run, weight assignment, CSR freeze,
//! degeneracy ordering for the α fallback) dominates the cost of small
//! queries, so the daemon caches whole built instances. Two maps make a
//! lookup cheap for every source kind:
//!
//! * `by_instance` — the canonical store,
//!   `instance key → Arc<CachedGraph>`, with LRU eviction once the
//!   **bytes held** ([`arbodom_graph::MemoryFootprint`] totals of the
//!   cached CSRs) exceed the byte budget. Budgeting by bytes instead of
//!   entry count means one million-node instance and a thousand toy
//!   graphs are charged what they actually cost — the old entry-counted
//!   policy let a handful of huge graphs pin gigabytes. The key is the
//!   edge digest folded with α and the planted set: two sources
//!   describing the same edge structure but carrying different metadata
//!   (a `PlantedDs` generator vs the same edges shipped inline) must
//!   **not** converge, or a job's reported reference/guarantee would
//!   depend on what ran before it.
//! * `by_source` — a spec index, hash of the encoded
//!   [`crate::protocol::GraphSource`] `→ instance key`, so a repeated
//!   generator/scenario query resolves without rebuilding (the digest is
//!   only computable *after* construction).
//!
//! Lookups bump recency; eviction removes least-recently-used instances
//! (oldest `last_used` first) until the budget is met, along with every
//! spec key pointing at them — the entry just inserted is never the
//! victim, so an over-budget instance is still served to the job that
//! built it. The cache never stores failures: a source that fails to
//! build is re-attempted (and re-fails) on every query. Every hit is
//! verified against the stored encoded source bytes and the stored
//! instance metadata, so hash collisions of either 64-bit key degrade to
//! a rebuild — never to a wrong or state-dependent answer.

use std::collections::HashMap;
use std::sync::Arc;

use arbodom_graph::{Graph, NodeId};

use crate::protocol::CacheStats;

/// A built instance, shareable across worker threads.
#[derive(Debug)]
pub struct CachedGraph {
    /// The built (and weighted) graph.
    pub graph: Graph,
    /// The planted dominating set, when the family provides one.
    pub planted: Option<Vec<NodeId>>,
    /// The arboricity parameter queries on this graph run with (the
    /// family's constructive bound, or the measured degeneracy).
    pub alpha: usize,
    /// The instance's edge digest — the structural half of its cache
    /// identity (α and the planted set are the other half).
    pub digest: u64,
}

impl CachedGraph {
    /// Whether two built instances are interchangeable: same structure
    /// *and* same accounting metadata.
    fn same_instance(&self, other: &CachedGraph) -> bool {
        self.digest == other.digest && self.alpha == other.alpha && self.planted == other.planted
    }

    /// What this instance charges against the cache's byte budget: the
    /// CSR footprint plus the planted set.
    fn cost_bytes(&self) -> usize {
        self.graph.memory_footprint().total()
            + self
                .planted
                .as_ref()
                .map_or(0, |set| set.len() * std::mem::size_of::<NodeId>())
    }
}

/// The canonical store key: the edge digest folded with α and the
/// planted set, so same-structure instances with different metadata get
/// distinct entries.
fn instance_key(built: &CachedGraph) -> u64 {
    let mut h = built.digest;
    let mut fold = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    fold(built.alpha as u64);
    match &built.planted {
        None => fold(u64::MAX),
        Some(set) => {
            fold(set.len() as u64);
            for v in set {
                fold(u64::from(v.get()));
            }
        }
    }
    h
}

struct Entry {
    graph: Arc<CachedGraph>,
    last_used: u64,
    /// Bytes this entry charges against the budget (fixed at insert).
    bytes: usize,
    /// Spec keys resolving to this instance, removed together on
    /// eviction.
    sources: Vec<u64>,
}

/// What a spec key resolved from and to. The encoded source bytes are
/// kept so a 64-bit key collision between two distinct sources is
/// *detected* on lookup (miss + rebuild) instead of silently serving the
/// wrong graph.
struct SourceRef {
    bytes: Vec<u8>,
    instance: u64,
}

/// A byte-budgeted LRU cache of built graphs. Not internally
/// synchronized — the server wraps it in a mutex and keeps build work
/// *outside* the lock.
pub struct GraphCache {
    budget_bytes: usize,
    held_bytes: usize,
    tick: u64,
    by_instance: HashMap<u64, Entry>,
    by_source: HashMap<u64, SourceRef>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl GraphCache {
    /// A cache evicting down to `budget_bytes` of held instances
    /// (minimum 1 — a zero budget degenerates to "evict everything but
    /// the latest insert").
    pub fn new(budget_bytes: usize) -> Self {
        GraphCache {
            budget_bytes: budget_bytes.max(1),
            held_bytes: 0,
            tick: 0,
            by_instance: HashMap::new(),
            by_source: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up the instance a source resolved to earlier, bumping
    /// recency and the hit counter. `source_bytes` is the encoded source
    /// the key was derived from: a stored entry only hits when the bytes
    /// match, so key collisions degrade to a rebuild, never to a wrong
    /// answer.
    pub fn lookup(&mut self, source_key: u64, source_bytes: &[u8]) -> Option<Arc<CachedGraph>> {
        let sref = self.by_source.get(&source_key)?;
        if sref.bytes != source_bytes {
            return None; // 64-bit key collision between distinct sources
        }
        let instance = sref.instance;
        let Some(entry) = self.by_instance.get_mut(&instance) else {
            // The instance was evicted but this spec key survived
            // (possible only transiently); treat as a miss and drop the
            // dangler.
            self.by_source.remove(&source_key);
            return None;
        };
        self.tick += 1;
        entry.last_used = self.tick;
        self.hits += 1;
        Some(Arc::clone(&entry.graph))
    }

    /// Inserts a freshly built instance under its instance key and the
    /// source key (+ encoded bytes) that produced it, evicting
    /// least-recently-used entries while the byte budget is exceeded.
    /// Returns the canonical `Arc`: an existing entry with the same
    /// instance key *and* matching metadata wins, so concurrent
    /// duplicate builds converge; on the (hash-collision) chance the
    /// stored entry is a *different* instance, the fresh build is
    /// returned uncached so the answer is still correct.
    pub fn insert(
        &mut self,
        source_key: u64,
        source_bytes: Vec<u8>,
        built: CachedGraph,
    ) -> Arc<CachedGraph> {
        self.misses += 1;
        self.tick += 1;
        let instance = instance_key(&built);
        if let Some(existing) = self.by_instance.get(&instance) {
            if !existing.graph.same_instance(&built) {
                return Arc::new(built);
            }
        }
        let tick = self.tick;
        let cost = built.cost_bytes();
        let held = &mut self.held_bytes;
        let entry = self.by_instance.entry(instance).or_insert_with(|| {
            *held += cost;
            Entry {
                graph: Arc::new(built),
                last_used: tick,
                bytes: cost,
                sources: Vec::new(),
            }
        });
        entry.last_used = tick;
        if !entry.sources.contains(&source_key) {
            entry.sources.push(source_key);
        }
        let graph = Arc::clone(&entry.graph);
        self.by_source.insert(
            source_key,
            SourceRef {
                bytes: source_bytes,
                instance,
            },
        );
        while self.held_bytes > self.budget_bytes {
            let lru = self
                .by_instance
                .iter()
                .filter(|(k, _)| **k != instance)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = lru else { break };
            if let Some(evicted) = self.by_instance.remove(&victim) {
                self.held_bytes -= evicted.bytes;
                for key in evicted.sources {
                    self.by_source.remove(&key);
                }
                self.evictions += 1;
            }
        }
        graph
    }

    /// Aggregate counters for the `Stats` request. The session fields
    /// are zero here — the server overlays the session table's usage
    /// before the reply goes out.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.by_instance.len() as u64,
            capacity: self.budget_bytes as u64,
            bytes: self.held_bytes as u64,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            ..CacheStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbodom_graph::digest::edge_digest;
    use arbodom_graph::generators;

    fn cached(n: usize) -> CachedGraph {
        let g = generators::path(n);
        let digest = edge_digest(&g);
        CachedGraph {
            graph: g,
            planted: None,
            alpha: 1,
            digest,
        }
    }

    /// The budget that holds exactly these path graphs, nothing more.
    fn budget_for(sizes: &[usize]) -> usize {
        sizes.iter().map(|&n| cached(n).cost_bytes()).sum()
    }

    #[test]
    fn hit_after_insert_and_stats_counting() {
        let mut cache = GraphCache::new(budget_for(&[5, 6, 7, 8]));
        assert!(cache.lookup(11, &[11]).is_none());
        cache.insert(11, vec![11], cached(5));
        let hit = cache.lookup(11, &[11]).expect("cached");
        assert_eq!(hit.graph.n(), 5);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, cached(5).cost_bytes() as u64);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn two_sources_share_one_digest_entry() {
        let mut cache = GraphCache::new(budget_for(&[6, 6]));
        cache.insert(1, vec![1], cached(6));
        cache.insert(2, vec![2], cached(6));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(
            stats.bytes,
            cached(6).cost_bytes() as u64,
            "a shared instance is charged once"
        );
        assert!(cache.lookup(1, &[1]).is_some());
        assert!(cache.lookup(2, &[2]).is_some());
    }

    #[test]
    fn byte_budget_evicts_the_coldest_and_its_source_keys() {
        // Budget fits the 3- and 5-path together but not a third graph.
        let mut cache = GraphCache::new(budget_for(&[3, 5]));
        cache.insert(1, vec![1], cached(3));
        cache.insert(2, vec![2], cached(4));
        cache.lookup(1, &[1]); // 3-path is now the most recent
        cache.insert(3, vec![3], cached(5)); // over budget: evicts the 4-path
        assert!(cache.lookup(1, &[1]).is_some());
        assert!(cache.lookup(3, &[3]).is_some());
        assert!(
            cache.lookup(2, &[2]).is_none(),
            "evicted entry must be gone"
        );
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.bytes, budget_for(&[3, 5]) as u64);
    }

    /// Regression pin for the eviction *order* under a byte budget:
    /// victims leave strictly least-recently-used first, recency is set
    /// by lookups (not insertion order), and one oversized insert evicts
    /// however many cold entries the budget demands — never the entry
    /// being inserted.
    #[test]
    fn byte_budget_eviction_order_is_lru_by_last_touch() {
        let mut cache = GraphCache::new(budget_for(&[3, 4, 5]));
        cache.insert(1, vec![1], cached(3));
        cache.insert(2, vec![2], cached(4));
        cache.insert(3, vec![3], cached(5));
        assert_eq!(cache.stats().evictions, 0, "budget holds all three");
        // Touch in the order 2, 1: graph 3 is now the coldest, then 1.
        cache.lookup(2, &[2]);
        cache.lookup(1, &[1]);
        // A graph as big as 3+4 together forces two evictions: first the
        // 5-path (coldest), then the 4-path — NOT the 3-path, which was
        // touched last, and NOT the incoming graph.
        let big = generators::path(3 + 4);
        let big = CachedGraph {
            digest: edge_digest(&big),
            graph: big,
            planted: None,
            alpha: 1,
        };
        cache.insert(4, vec![4], big);
        assert!(cache.lookup(3, &[3]).is_none(), "coldest evicted first");
        assert!(cache.lookup(2, &[2]).is_none(), "second-coldest next");
        assert!(cache.lookup(1, &[1]).is_some(), "warmest survives");
        assert!(
            cache.lookup(4, &[4]).is_some(),
            "insert is never the victim"
        );
        let stats = cache.stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.bytes, budget_for(&[3, 7]) as u64);
    }

    #[test]
    fn oversized_insert_is_kept_and_served() {
        // A single instance above the whole budget: everything else is
        // evicted, but the instance itself is stored and returned — the
        // job that built it must be answered.
        let mut cache = GraphCache::new(1);
        let got = cache.insert(1, vec![1], cached(10));
        assert_eq!(got.graph.n(), 10);
        assert!(cache.lookup(1, &[1]).is_some());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn same_structure_different_metadata_do_not_converge() {
        // A planted-generator instance and an inline copy of the same
        // edges share an edge digest but not α/planted: each must keep
        // its own entry, or job results would depend on cache state.
        let mut cache = GraphCache::new(budget_for(&[5, 5, 5]));
        let plain = cached(5);
        let mut with_meta = cached(5);
        with_meta.alpha = 3;
        with_meta.planted = Some(vec![NodeId::new(0), NodeId::new(3)]);
        cache.insert(1, vec![1], plain);
        let got = cache.insert(2, vec![2], with_meta);
        assert_eq!(got.alpha, 3, "second insert must keep its own metadata");
        assert_eq!(cache.stats().entries, 2, "two distinct instances");
        assert_eq!(cache.lookup(1, &[1]).unwrap().alpha, 1);
        assert_eq!(cache.lookup(2, &[2]).unwrap().alpha, 3);
        assert!(cache.lookup(2, &[2]).unwrap().planted.is_some());
    }

    /// Densification pin for the memory-tiered representation: a cached
    /// unit-weight instance charges zero weight bytes against the budget,
    /// so a budget sized for explicitly-weighted graphs holds strictly
    /// more unit-weight ones (8 fewer bytes per node each).
    #[test]
    fn unit_weight_instances_charge_no_weight_bytes() {
        let n = 64;
        let unit = cached(n);
        assert_eq!(unit.graph.memory_footprint().weights_bytes, 0);
        let mut ws = vec![1u64; n];
        ws[0] = 2; // one non-unit weight forces the explicit tier
        let weighted = CachedGraph {
            graph: unit.graph.with_weights(ws).unwrap(),
            planted: None,
            alpha: 1,
            digest: unit.digest,
        };
        assert_eq!(
            weighted.cost_bytes(),
            unit.cost_bytes() + 8 * n,
            "explicit weights must cost exactly 8 bytes/node more"
        );
        // The budget that holds two weighted instances holds three unit
        // ones of the same structure at n = 64 (the 8n saving covers a
        // third CSR): the tier directly buys cache density.
        assert!(3 * unit.cost_bytes() <= 2 * weighted.cost_bytes());
    }

    #[test]
    fn key_collisions_between_distinct_sources_miss_instead_of_lying() {
        // Two different encoded sources hashing to the same 64-bit key:
        // the second must NOT be served the first one's graph.
        let mut cache = GraphCache::new(budget_for(&[5, 7]));
        cache.insert(99, vec![1, 2, 3], cached(5));
        assert!(
            cache.lookup(99, &[4, 5, 6]).is_none(),
            "collision must degrade to a rebuild, not a wrong answer"
        );
        // The colliding source rebuilds and takes over the key; the
        // original source now misses (correctness over retention).
        cache.insert(99, vec![4, 5, 6], cached(7));
        assert_eq!(cache.lookup(99, &[4, 5, 6]).unwrap().graph.n(), 7);
        assert!(cache.lookup(99, &[1, 2, 3]).is_none());
    }
}
