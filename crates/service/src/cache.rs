//! The daemon's graph cache: LRU over built instances, keyed by
//! [`arbodom_graph::digest::edge_digest`] folded with the instance's
//! metadata (α, planted set).
//!
//! Building a graph (generator run, weight assignment, CSR freeze,
//! degeneracy ordering for the α fallback) dominates the cost of small
//! queries, so the daemon caches whole built instances. Two maps make a
//! lookup cheap for every source kind:
//!
//! * `by_instance` — the canonical store,
//!   `instance key → Arc<CachedGraph>`, with LRU eviction at `capacity`.
//!   The key is the edge digest folded with α and the planted set:
//!   two sources describing the same edge structure but carrying
//!   different metadata (a `PlantedDs` generator vs the same edges
//!   shipped inline) must **not** converge, or a job's reported
//!   reference/guarantee would depend on what ran before it.
//! * `by_source` — a spec index, hash of the encoded
//!   [`crate::protocol::GraphSource`] `→ instance key`, so a repeated
//!   generator/scenario query resolves without rebuilding (the digest is
//!   only computable *after* construction).
//!
//! Lookups bump recency; eviction removes the least-recently-used
//! instance along with every spec key pointing at it. The cache never
//! stores failures: a source that fails to build is re-attempted (and
//! re-fails) on every query. Every hit is verified against the stored
//! encoded source bytes and the stored instance metadata, so hash
//! collisions of either 64-bit key degrade to a rebuild — never to a
//! wrong or state-dependent answer.

use std::collections::HashMap;
use std::sync::Arc;

use arbodom_graph::{Graph, NodeId};

use crate::protocol::CacheStats;

/// A built instance, shareable across worker threads.
#[derive(Debug)]
pub struct CachedGraph {
    /// The built (and weighted) graph.
    pub graph: Graph,
    /// The planted dominating set, when the family provides one.
    pub planted: Option<Vec<NodeId>>,
    /// The arboricity parameter queries on this graph run with (the
    /// family's constructive bound, or the measured degeneracy).
    pub alpha: usize,
    /// The instance's edge digest — the structural half of its cache
    /// identity (α and the planted set are the other half).
    pub digest: u64,
}

impl CachedGraph {
    /// Whether two built instances are interchangeable: same structure
    /// *and* same accounting metadata.
    fn same_instance(&self, other: &CachedGraph) -> bool {
        self.digest == other.digest && self.alpha == other.alpha && self.planted == other.planted
    }
}

/// The canonical store key: the edge digest folded with α and the
/// planted set, so same-structure instances with different metadata get
/// distinct entries.
fn instance_key(built: &CachedGraph) -> u64 {
    let mut h = built.digest;
    let mut fold = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    fold(built.alpha as u64);
    match &built.planted {
        None => fold(u64::MAX),
        Some(set) => {
            fold(set.len() as u64);
            for v in set {
                fold(u64::from(v.get()));
            }
        }
    }
    h
}

struct Entry {
    graph: Arc<CachedGraph>,
    last_used: u64,
    /// Spec keys resolving to this instance, removed together on
    /// eviction.
    sources: Vec<u64>,
}

/// What a spec key resolved from and to. The encoded source bytes are
/// kept so a 64-bit key collision between two distinct sources is
/// *detected* on lookup (miss + rebuild) instead of silently serving the
/// wrong graph.
struct SourceRef {
    bytes: Vec<u8>,
    instance: u64,
}

/// An LRU cache of built graphs. Not internally synchronized — the server
/// wraps it in a mutex and keeps build work *outside* the lock.
pub struct GraphCache {
    capacity: usize,
    tick: u64,
    by_instance: HashMap<u64, Entry>,
    by_source: HashMap<u64, SourceRef>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl GraphCache {
    /// A cache evicting beyond `capacity` graphs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        GraphCache {
            capacity: capacity.max(1),
            tick: 0,
            by_instance: HashMap::new(),
            by_source: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up the instance a source resolved to earlier, bumping
    /// recency and the hit counter. `source_bytes` is the encoded source
    /// the key was derived from: a stored entry only hits when the bytes
    /// match, so key collisions degrade to a rebuild, never to a wrong
    /// answer.
    pub fn lookup(&mut self, source_key: u64, source_bytes: &[u8]) -> Option<Arc<CachedGraph>> {
        let sref = self.by_source.get(&source_key)?;
        if sref.bytes != source_bytes {
            return None; // 64-bit key collision between distinct sources
        }
        let instance = sref.instance;
        let Some(entry) = self.by_instance.get_mut(&instance) else {
            // The instance was evicted but this spec key survived
            // (possible only transiently); treat as a miss and drop the
            // dangler.
            self.by_source.remove(&source_key);
            return None;
        };
        self.tick += 1;
        entry.last_used = self.tick;
        self.hits += 1;
        Some(Arc::clone(&entry.graph))
    }

    /// Inserts a freshly built instance under its instance key and the
    /// source key (+ encoded bytes) that produced it, evicting the
    /// least-recently-used entry when over capacity. Returns the
    /// canonical `Arc`: an existing entry with the same instance key
    /// *and* matching metadata wins, so concurrent duplicate builds
    /// converge; on the (hash-collision) chance the stored entry is a
    /// *different* instance, the fresh build is returned uncached so the
    /// answer is still correct.
    pub fn insert(
        &mut self,
        source_key: u64,
        source_bytes: Vec<u8>,
        built: CachedGraph,
    ) -> Arc<CachedGraph> {
        self.misses += 1;
        self.tick += 1;
        let instance = instance_key(&built);
        if let Some(existing) = self.by_instance.get(&instance) {
            if !existing.graph.same_instance(&built) {
                return Arc::new(built);
            }
        }
        let tick = self.tick;
        let entry = self.by_instance.entry(instance).or_insert_with(|| Entry {
            graph: Arc::new(built),
            last_used: tick,
            sources: Vec::new(),
        });
        entry.last_used = tick;
        if !entry.sources.contains(&source_key) {
            entry.sources.push(source_key);
        }
        let graph = Arc::clone(&entry.graph);
        self.by_source.insert(
            source_key,
            SourceRef {
                bytes: source_bytes,
                instance,
            },
        );
        while self.by_instance.len() > self.capacity {
            let lru = self
                .by_instance
                .iter()
                .filter(|(k, _)| **k != instance)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = lru else { break };
            if let Some(evicted) = self.by_instance.remove(&victim) {
                for key in evicted.sources {
                    self.by_source.remove(&key);
                }
                self.evictions += 1;
            }
        }
        graph
    }

    /// Aggregate counters for the `Stats` request.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.by_instance.len() as u64,
            capacity: self.capacity as u64,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbodom_graph::digest::edge_digest;
    use arbodom_graph::generators;

    fn cached(n: usize) -> CachedGraph {
        let g = generators::path(n);
        let digest = edge_digest(&g);
        CachedGraph {
            graph: g,
            planted: None,
            alpha: 1,
            digest,
        }
    }

    #[test]
    fn hit_after_insert_and_stats_counting() {
        let mut cache = GraphCache::new(4);
        assert!(cache.lookup(11, &[11]).is_none());
        cache.insert(11, vec![11], cached(5));
        let hit = cache.lookup(11, &[11]).expect("cached");
        assert_eq!(hit.graph.n(), 5);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn two_sources_share_one_digest_entry() {
        let mut cache = GraphCache::new(4);
        cache.insert(1, vec![1], cached(6));
        cache.insert(2, vec![2], cached(6));
        assert_eq!(cache.stats().entries, 1);
        assert!(cache.lookup(1, &[1]).is_some());
        assert!(cache.lookup(2, &[2]).is_some());
    }

    #[test]
    fn lru_eviction_drops_the_coldest_and_its_source_keys() {
        let mut cache = GraphCache::new(2);
        cache.insert(1, vec![1], cached(3));
        cache.insert(2, vec![2], cached(4));
        cache.lookup(1, &[1]); // 3-path is now the most recent
        cache.insert(3, vec![3], cached(5)); // evicts the 4-path
        assert!(cache.lookup(1, &[1]).is_some());
        assert!(cache.lookup(3, &[3]).is_some());
        assert!(
            cache.lookup(2, &[2]).is_none(),
            "evicted entry must be gone"
        );
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn same_structure_different_metadata_do_not_converge() {
        // A planted-generator instance and an inline copy of the same
        // edges share an edge digest but not α/planted: each must keep
        // its own entry, or job results would depend on cache state.
        let mut cache = GraphCache::new(4);
        let plain = cached(5);
        let mut with_meta = cached(5);
        with_meta.alpha = 3;
        with_meta.planted = Some(vec![NodeId::new(0), NodeId::new(3)]);
        cache.insert(1, vec![1], plain);
        let got = cache.insert(2, vec![2], with_meta);
        assert_eq!(got.alpha, 3, "second insert must keep its own metadata");
        assert_eq!(cache.stats().entries, 2, "two distinct instances");
        assert_eq!(cache.lookup(1, &[1]).unwrap().alpha, 1);
        assert_eq!(cache.lookup(2, &[2]).unwrap().alpha, 3);
        assert!(cache.lookup(2, &[2]).unwrap().planted.is_some());
    }

    #[test]
    fn key_collisions_between_distinct_sources_miss_instead_of_lying() {
        // Two different encoded sources hashing to the same 64-bit key:
        // the second must NOT be served the first one's graph.
        let mut cache = GraphCache::new(4);
        cache.insert(99, vec![1, 2, 3], cached(5));
        assert!(
            cache.lookup(99, &[4, 5, 6]).is_none(),
            "collision must degrade to a rebuild, not a wrong answer"
        );
        // The colliding source rebuilds and takes over the key; the
        // original source now misses (correctness over retention).
        cache.insert(99, vec![4, 5, 6], cached(7));
        assert_eq!(cache.lookup(99, &[4, 5, 6]).unwrap().graph.n(), 7);
        assert!(cache.lookup(99, &[1, 2, 3]).is_none());
    }
}
