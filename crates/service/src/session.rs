//! Server-side sessions: owned dynamic solve state behind the v2
//! protocol.
//!
//! A [`Session`] is what [`crate::protocol::Request::Open`] creates — a
//! [`arbodom_core::repair::Maintainer`] (the mutated graph, the
//! maintained dominating set, the drift anchor, and the digest chain of
//! the mutation history) plus the algorithm and seed the instance was
//! opened with. `Mutate` requests apply edge-delta batches and keep the
//! set valid by **local incremental repair**, falling back to a certified
//! full re-solve when the drift bound trips (or unconditionally under
//! [`SessionPolicy::Resolve`]); `Resolve` forces the fallback;
//! `Release` drops the state.
//!
//! Sessions are heavyweight (an owned graph plus the maintained set), and
//! clients crash or wander off without releasing — an unbounded registry
//! is a memory leak with a protocol attached. [`SessionTable`] therefore
//! evicts on two axes, both lazy (enforced on the next table access, no
//! background thread): an **idle TTL** ([`SessionLimits::idle_ttl`]) and
//! a **hard cap** on live sessions ([`SessionLimits::max_sessions`],
//! least-recently-used victim). Evicted ids keep answering with a *typed*
//! reason ([`SessionLost::Expired`] / [`SessionLost::Displaced`]) so a
//! returning client can tell "the server dropped my state" from "I never
//! had a session", and the daemon's `Stats` reply reports live session
//! count and resident bytes alongside the graph cache's.
//!
//! Sessions are addressable from regular batch jobs too:
//! [`crate::protocol::GraphSource::Session`] snapshots a session's
//! *current* graph, so the whole read-side query surface works on a
//! mutating instance.
//!
//! Determinism: a session's replies are a pure function of the open spec
//! and the mutation history. Repairs run no simulation at all; fallback
//! solves run the same thread-count-independent simulator entry points
//! batch jobs use. The graph's α is re-measured (degeneracy) after every
//! batch — churn can push an instance out of its family's constructive
//! bound, and the accounting must say so rather than inherit a stale α.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use arbodom_congest::{RunOptions, Telemetry};
use arbodom_core::repair::{Maintainer, RepairConfig};
use arbodom_core::{verify, DsResult};
use arbodom_graph::digest::edge_digest;
use arbodom_graph::{orientation, Graph, GraphDelta};
use arbodom_scenarios::{quality, Algorithm};

use crate::protocol::{DeltaSpec, JobResult, RepairStats, SessionPolicy};

/// Measured degeneracy of `g` — the honest α for a mutated graph, which
/// may have left its family's constructive bound.
fn measured_alpha(g: &Graph) -> usize {
    orientation::degeneracy_order(g).1.max(1)
}

/// One open session: the maintainer plus how its solves run.
#[derive(Debug)]
pub struct Session {
    maintainer: Maintainer,
    algorithm: Algorithm,
    alpha: usize,
    seed: u64,
}

impl Session {
    /// Adopts a solved instance. `solution` must be a valid dominating
    /// set of `graph` (checked by the caller; the maintainer asserts it).
    pub fn new(
        graph: Graph,
        solution: &DsResult,
        algorithm: Algorithm,
        alpha: usize,
        seed: u64,
    ) -> Self {
        Session {
            maintainer: Maintainer::new(graph, solution, RepairConfig::default()),
            algorithm,
            alpha,
            seed,
        }
    }

    /// A snapshot of the session's current graph, for
    /// [`crate::protocol::GraphSource::Session`] jobs.
    pub fn graph_snapshot(&self) -> Graph {
        self.maintainer.graph().clone()
    }

    /// The α the session's accounting currently runs with.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// The algorithm the session was opened with (the default for jobs
    /// addressing this session).
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Resident bytes this session charges against the daemon's session
    /// accounting: the owned graph's footprint plus the membership flags
    /// (the counterpart of the graph cache's per-entry cost).
    pub fn cost_bytes(&self) -> u64 {
        (self.maintainer.graph().memory_footprint().total() + self.maintainer.in_ds().len()) as u64
    }

    /// Applies one edge-delta batch under `policy`.
    ///
    /// # Errors
    ///
    /// A job-level message when the delta is malformed or conflicts with
    /// the current edge set (the session is unchanged), or when the
    /// fallback re-solve fails.
    pub fn mutate(
        &mut self,
        delta: &DeltaSpec,
        policy: SessionPolicy,
        sim_threads: usize,
    ) -> Result<(JobResult, RepairStats), String> {
        let delta = GraphDelta::new(delta.inserts.iter().copied(), delta.deletes.iter().copied())
            .map_err(|e| format!("invalid delta: {e}"))?;
        let algorithm = self.algorithm;
        let seed = self.seed;
        let telemetry: RefCell<Option<Telemetry>> = RefCell::new(None);
        let solve = |g: &Graph| {
            let (sol, tel) = algorithm.execute(
                g,
                measured_alpha(g),
                seed,
                &RunOptions::default(),
                sim_threads,
            )?;
            *telemetry.borrow_mut() = Some(tel);
            Ok(sol)
        };
        let mut outcome = self
            .maintainer
            .apply(&delta, solve)
            .map_err(|e| format!("mutate failed: {e}"))?;
        if policy == SessionPolicy::Resolve && outcome.repaired {
            // The drift bound did not trip, but the client asked for a
            // certified batch: run the fallback anyway.
            let solve = |g: &Graph| {
                let (sol, tel) = algorithm.execute(
                    g,
                    measured_alpha(g),
                    seed,
                    &RunOptions::default(),
                    sim_threads,
                )?;
                *telemetry.borrow_mut() = Some(tel);
                Ok(sol)
            };
            self.maintainer
                .resolve_with(solve)
                .map_err(|e| format!("re-solve failed: {e}"))?;
            outcome.repaired = false;
            outcome.added.clear();
            outcome.removed.clear();
            outcome.weight = self.maintainer.weight();
            outcome.drift_estimate = self.maintainer.drift_estimate();
        }
        self.alpha = measured_alpha(self.maintainer.graph());
        let repair = RepairStats {
            repaired: outcome.repaired,
            added: outcome.added.len() as u64,
            removed: outcome.removed.len() as u64,
            undominated_before: outcome.undominated_before as u64,
            drift_estimate: outcome.drift_estimate,
            batches_since_solve: self.maintainer.batches_since_solve() as u64,
            chain: self.maintainer.chain(),
        };
        Ok((self.result_snapshot(telemetry.into_inner()), repair))
    }

    /// Forces a certified full re-solve on the current graph.
    ///
    /// # Errors
    ///
    /// A job-level message when the solve fails.
    pub fn resolve(&mut self, sim_threads: usize) -> Result<(JobResult, RepairStats), String> {
        let algorithm = self.algorithm;
        let seed = self.seed;
        let telemetry: RefCell<Option<Telemetry>> = RefCell::new(None);
        let solve = |g: &Graph| {
            let (sol, tel) = algorithm.execute(
                g,
                measured_alpha(g),
                seed,
                &RunOptions::default(),
                sim_threads,
            )?;
            *telemetry.borrow_mut() = Some(tel);
            Ok(sol)
        };
        self.maintainer
            .resolve_with(solve)
            .map_err(|e| format!("re-solve failed: {e}"))?;
        self.alpha = measured_alpha(self.maintainer.graph());
        let repair = RepairStats {
            repaired: false,
            added: 0,
            removed: 0,
            undominated_before: 0,
            drift_estimate: self.maintainer.drift_estimate(),
            batches_since_solve: self.maintainer.batches_since_solve() as u64,
            chain: self.maintainer.chain(),
        };
        Ok((self.result_snapshot(telemetry.into_inner()), repair))
    }

    /// Quality-accounts the maintained set on the current graph. The
    /// planted reference (if the instance had one) is stale after any
    /// mutation, so sessions always account against exact/packing
    /// references; rounds and message counters reflect only what this
    /// batch actually simulated (all zero for a kept local repair).
    fn result_snapshot(&self, telemetry: Option<Telemetry>) -> JobResult {
        let g = self.maintainer.graph();
        let sol = DsResult::from_flags(g, self.maintainer.in_ds().to_vec(), 0, None);
        let undominated = verify::undominated_nodes(g, &sol.in_ds).len();
        let valid = undominated == 0;
        let guarantee = self.algorithm.guarantee(self.alpha, g.max_degree());
        let account = quality::account(g, &sol, None, guarantee, valid, false);
        let tel = telemetry.unwrap_or_default();
        JobResult {
            n: g.n() as u64,
            m: g.m() as u64,
            max_degree: g.max_degree() as u64,
            alpha: self.alpha as u64,
            graph_digest: edge_digest(g),
            ds_size: sol.size as u64,
            ds_weight: sol.weight,
            valid,
            undominated: undominated as u64,
            reference: account.reference,
            opt_estimate: account.opt_estimate,
            ratio: account.ratio,
            guarantee: account.guarantee,
            within_guarantee: account.within_guarantee,
            flagged: account.flagged,
            rounds: tel.rounds as u64,
            round_budget: self.algorithm.round_budget(self.alpha, g.max_degree()) as u64,
            messages: tel.total_messages as u64,
            total_bits: tel.total_bits as u64,
            max_message_bits: tel.max_message_bits as u64,
            budget_violations: tel.budget_violations as u64,
            dropped_messages: tel.dropped_messages as u64,
            members: None,
        }
    }
}

/// Eviction policy for the session registry.
#[derive(Clone, Copy, Debug)]
pub struct SessionLimits {
    /// Sessions untouched for longer than this are evicted (lazily, on
    /// the next table access — there is no background sweeper thread).
    pub idle_ttl: Duration,
    /// Hard cap on live sessions; inserting past it evicts the
    /// least-recently-used session first. Clamped to at least 1 — the
    /// session just opened must be addressable.
    pub max_sessions: usize,
}

impl Default for SessionLimits {
    fn default() -> Self {
        SessionLimits {
            idle_ttl: Duration::from_secs(900),
            max_sessions: 64,
        }
    }
}

/// Why a session id no longer resolves — the typed half of the session
/// lookup contract, turned into a job-level error string at the server
/// boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionLost {
    /// Evicted after idling past [`SessionLimits::idle_ttl`].
    Expired,
    /// Evicted as the least-recently-used victim of
    /// [`SessionLimits::max_sessions`].
    Displaced,
    /// Released by a client, or never opened.
    Unknown,
}

impl SessionLost {
    /// The job-level error message for a failed lookup of `id`.
    pub fn describe(self, id: u64) -> String {
        format!("{} session {id} ({})", self.noun(), self)
    }

    fn noun(self) -> &'static str {
        match self {
            SessionLost::Expired => "expired",
            SessionLost::Displaced => "evicted",
            SessionLost::Unknown => "unknown",
        }
    }
}

impl fmt::Display for SessionLost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SessionLost::Expired => "idle past the server's session TTL; reopen to continue",
            SessionLost::Displaced => {
                "evicted to stay under the server's session cap; reopen to continue"
            }
            SessionLost::Unknown => "released or never opened",
        })
    }
}

struct TableEntry {
    session: Arc<Mutex<Session>>,
    last_used: Instant,
    bytes: u64,
}

#[derive(Default)]
struct TableInner {
    live: HashMap<u64, TableEntry>,
    /// Ids evicted *by policy* and why, so later lookups get a typed
    /// answer instead of "unknown". Bounded: ids are monotonic, so the
    /// smallest key is the oldest record and is dropped past the cap.
    lost: BTreeMap<u64, SessionLost>,
    evictions: u64,
}

/// How many policy-evicted ids keep their typed reason. Past this, the
/// oldest degrade to [`SessionLost::Unknown`] — a bounded table cannot
/// grow an unbounded tombstone map in a leak fix.
const LOST_RECORDS_MAX: usize = 1024;

impl TableInner {
    fn mark_lost(&mut self, id: u64, why: SessionLost) {
        self.lost.insert(id, why);
        self.evictions += 1;
        while self.lost.len() > LOST_RECORDS_MAX {
            self.lost.pop_first();
        }
    }

    /// Evicts everything idle past the TTL. Runs on every table access;
    /// cheap because tables are small by construction (`max_sessions`).
    fn sweep(&mut self, now: Instant, ttl: Duration) {
        let expired: Vec<u64> = self
            .live
            .iter()
            .filter(|(_, e)| now.duration_since(e.last_used) > ttl)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            self.live.remove(&id);
            self.mark_lost(id, SessionLost::Expired);
        }
    }
}

/// The daemon's session registry: ids to live sessions. Shared across
/// connections — a session opened on one connection is addressable from
/// any other (ids are capabilities only in the loopback-trust sense the
/// whole daemon operates under). Bounded by [`SessionLimits`]: idle
/// sessions expire, and the cap evicts least-recently-used — see the
/// module docs.
#[derive(Default)]
pub struct SessionTable {
    inner: Mutex<TableInner>,
    next_id: AtomicU64,
    limits: SessionLimits,
}

impl SessionTable {
    /// An empty table with the default [`SessionLimits`].
    pub fn new() -> Self {
        SessionTable::default()
    }

    /// An empty table with explicit limits.
    pub fn with_limits(limits: SessionLimits) -> Self {
        SessionTable {
            limits,
            ..SessionTable::default()
        }
    }

    /// Registers a session, returning its id (ids start at 1; 0 is the
    /// wire's "no session" sentinel). Sweeps expired sessions first, then
    /// evicts least-recently-used live ones until the new session fits
    /// under [`SessionLimits::max_sessions`].
    pub fn insert(&self, session: Session) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let bytes = session.cost_bytes();
        let now = Instant::now();
        let mut inner = self.lock();
        inner.sweep(now, self.limits.idle_ttl);
        while inner.live.len() >= self.limits.max_sessions.max(1) {
            let victim = inner
                .live
                .iter()
                .min_by_key(|(&vid, e)| (e.last_used, vid))
                .map(|(&vid, _)| vid);
            let Some(victim) = victim else { break };
            inner.live.remove(&victim);
            inner.mark_lost(victim, SessionLost::Displaced);
        }
        inner.live.insert(
            id,
            TableEntry {
                session: Arc::new(Mutex::new(session)),
                last_used: now,
                bytes,
            },
        );
        id
    }

    /// Looks up a live session, bumping its recency.
    ///
    /// # Errors
    ///
    /// [`SessionLost`] saying *why* the id does not resolve: expired,
    /// displaced by the cap, or plain unknown.
    pub fn get(&self, id: u64) -> Result<Arc<Mutex<Session>>, SessionLost> {
        let now = Instant::now();
        let mut inner = self.lock();
        inner.sweep(now, self.limits.idle_ttl);
        if let Some(entry) = inner.live.get_mut(&id) {
            entry.last_used = now;
            return Ok(Arc::clone(&entry.session));
        }
        Err(inner.lost.get(&id).copied().unwrap_or(SessionLost::Unknown))
    }

    /// Re-records a session's resident bytes (after a mutation changed
    /// its graph) and bumps its recency. A no-op for ids already evicted.
    pub fn record_usage(&self, id: u64, bytes: u64) {
        let now = Instant::now();
        let mut inner = self.lock();
        if let Some(entry) = inner.live.get_mut(&id) {
            entry.last_used = now;
            entry.bytes = bytes;
        }
    }

    /// Drops a session; returns whether it was live.
    pub fn remove(&self, id: u64) -> bool {
        let now = Instant::now();
        let mut inner = self.lock();
        inner.sweep(now, self.limits.idle_ttl);
        inner.live.remove(&id).is_some()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.usage().0 as usize
    }

    /// Whether no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live session count, their resident bytes, and sessions evicted by
    /// policy so far — the session block of the daemon's `Stats` reply.
    pub fn usage(&self) -> (u64, u64, u64) {
        let now = Instant::now();
        let mut inner = self.lock();
        inner.sweep(now, self.limits.idle_ttl);
        let bytes = inner.live.values().map(|e| e.bytes).sum();
        (inner.live.len() as u64, bytes, inner.evictions)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TableInner> {
        self.inner.lock().expect("session table poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbodom_core::weighted;
    use arbodom_graph::generators;

    fn session(n: usize) -> Session {
        let g = generators::path(n);
        let sol = weighted::solve(&g, &weighted::Config::new(1, 0.2).unwrap()).unwrap();
        Session::new(g, &sol, Algorithm::Weighted { eps: 0.2 }, 1, 7)
    }

    fn limits(ttl: Duration, max_sessions: usize) -> SessionLimits {
        SessionLimits {
            idle_ttl: ttl,
            max_sessions,
        }
    }

    /// The leak regression: before eviction existed, an abandoned
    /// session lived (and held its graph) forever. Now idling past the
    /// TTL evicts it, and the id answers with the *typed* expiry reason.
    #[test]
    fn idle_sessions_expire_with_a_typed_reason() {
        let table = SessionTable::with_limits(limits(Duration::from_millis(30), 8));
        let id = table.insert(session(20));
        assert!(table.get(id).is_ok(), "fresh session resolves");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(table.get(id).unwrap_err(), SessionLost::Expired);
        let (live, bytes, evictions) = table.usage();
        assert_eq!(live, 0, "expired session must be gone");
        assert_eq!(bytes, 0, "its graph must no longer be charged");
        assert_eq!(evictions, 1);
        assert!(!table.remove(id), "nothing left to release");
    }

    #[test]
    fn touches_keep_a_session_alive_past_its_original_deadline() {
        let table = SessionTable::with_limits(limits(Duration::from_millis(80), 8));
        let id = table.insert(session(20));
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(30));
            assert!(table.get(id).is_ok(), "touched session never expires");
        }
    }

    #[test]
    fn session_cap_displaces_the_least_recently_used() {
        let table = SessionTable::with_limits(limits(Duration::from_secs(3600), 2));
        let a = table.insert(session(10));
        std::thread::sleep(Duration::from_millis(5));
        let b = table.insert(session(10));
        std::thread::sleep(Duration::from_millis(5));
        table.get(a).unwrap(); // b is now the coldest
        std::thread::sleep(Duration::from_millis(5));
        let c = table.insert(session(10));
        assert_eq!(table.get(b).unwrap_err(), SessionLost::Displaced);
        assert!(table.get(a).is_ok(), "recently touched survives");
        assert!(table.get(c).is_ok(), "the new session is admitted");
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn released_and_never_opened_ids_are_unknown_not_expired() {
        let table = SessionTable::new();
        let id = table.insert(session(10));
        assert!(table.remove(id));
        assert_eq!(table.get(id).unwrap_err(), SessionLost::Unknown);
        assert_eq!(table.get(9999).unwrap_err(), SessionLost::Unknown);
        let (live, bytes, evictions) = table.usage();
        assert_eq!(
            (live, bytes, evictions),
            (0, 0, 0),
            "release is not eviction"
        );
    }

    #[test]
    fn usage_reports_resident_bytes_and_tracks_mutations() {
        let table = SessionTable::new();
        let s = session(30);
        let cost = s.cost_bytes();
        assert!(cost > 0);
        let id = table.insert(s);
        assert_eq!(table.usage().1, cost);
        // A mutation grew the graph: the server re-records the new cost.
        table.record_usage(id, cost + 128);
        assert_eq!(table.usage().1, cost + 128);
    }

    #[test]
    fn lost_reasons_render_the_wire_error_strings() {
        assert_eq!(
            SessionLost::Unknown.describe(3),
            "unknown session 3 (released or never opened)"
        );
        assert!(SessionLost::Expired
            .describe(4)
            .starts_with("expired session 4"));
        assert!(SessionLost::Displaced
            .describe(5)
            .starts_with("evicted session 5"));
    }
}
