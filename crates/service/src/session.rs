//! Server-side sessions: owned dynamic solve state behind the v2
//! protocol.
//!
//! A [`Session`] is what [`crate::protocol::Request::Open`] creates — a
//! [`arbodom_core::repair::Maintainer`] (the mutated graph, the
//! maintained dominating set, the drift anchor, and the digest chain of
//! the mutation history) plus the algorithm and seed the instance was
//! opened with. `Mutate` requests apply edge-delta batches and keep the
//! set valid by **local incremental repair**, falling back to a certified
//! full re-solve when the drift bound trips (or unconditionally under
//! [`SessionPolicy::Resolve`]); `Resolve` forces the fallback;
//! `Release` drops the state.
//!
//! Sessions are addressable from regular batch jobs too:
//! [`crate::protocol::GraphSource::Session`] snapshots a session's
//! *current* graph, so the whole read-side query surface works on a
//! mutating instance.
//!
//! Determinism: a session's replies are a pure function of the open spec
//! and the mutation history. Repairs run no simulation at all; fallback
//! solves run the same thread-count-independent simulator entry points
//! batch jobs use. The graph's α is re-measured (degeneracy) after every
//! batch — churn can push an instance out of its family's constructive
//! bound, and the accounting must say so rather than inherit a stale α.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use arbodom_congest::{RunOptions, Telemetry};
use arbodom_core::repair::{Maintainer, RepairConfig};
use arbodom_core::{verify, DsResult};
use arbodom_graph::digest::edge_digest;
use arbodom_graph::{orientation, Graph, GraphDelta};
use arbodom_scenarios::{quality, Algorithm};

use crate::protocol::{DeltaSpec, JobResult, RepairStats, SessionPolicy};

/// Measured degeneracy of `g` — the honest α for a mutated graph, which
/// may have left its family's constructive bound.
fn measured_alpha(g: &Graph) -> usize {
    orientation::degeneracy_order(g).1.max(1)
}

/// One open session: the maintainer plus how its solves run.
pub struct Session {
    maintainer: Maintainer,
    algorithm: Algorithm,
    alpha: usize,
    seed: u64,
}

impl Session {
    /// Adopts a solved instance. `solution` must be a valid dominating
    /// set of `graph` (checked by the caller; the maintainer asserts it).
    pub fn new(
        graph: Graph,
        solution: &DsResult,
        algorithm: Algorithm,
        alpha: usize,
        seed: u64,
    ) -> Self {
        Session {
            maintainer: Maintainer::new(graph, solution, RepairConfig::default()),
            algorithm,
            alpha,
            seed,
        }
    }

    /// A snapshot of the session's current graph, for
    /// [`crate::protocol::GraphSource::Session`] jobs.
    pub fn graph_snapshot(&self) -> Graph {
        self.maintainer.graph().clone()
    }

    /// The α the session's accounting currently runs with.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// The algorithm the session was opened with (the default for jobs
    /// addressing this session).
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Applies one edge-delta batch under `policy`.
    ///
    /// # Errors
    ///
    /// A job-level message when the delta is malformed or conflicts with
    /// the current edge set (the session is unchanged), or when the
    /// fallback re-solve fails.
    pub fn mutate(
        &mut self,
        delta: &DeltaSpec,
        policy: SessionPolicy,
        sim_threads: usize,
    ) -> Result<(JobResult, RepairStats), String> {
        let delta = GraphDelta::new(delta.inserts.iter().copied(), delta.deletes.iter().copied())
            .map_err(|e| format!("invalid delta: {e}"))?;
        let algorithm = self.algorithm;
        let seed = self.seed;
        let telemetry: RefCell<Option<Telemetry>> = RefCell::new(None);
        let solve = |g: &Graph| {
            let (sol, tel) = algorithm.execute(
                g,
                measured_alpha(g),
                seed,
                &RunOptions::default(),
                sim_threads,
            )?;
            *telemetry.borrow_mut() = Some(tel);
            Ok(sol)
        };
        let mut outcome = self
            .maintainer
            .apply(&delta, solve)
            .map_err(|e| format!("mutate failed: {e}"))?;
        if policy == SessionPolicy::Resolve && outcome.repaired {
            // The drift bound did not trip, but the client asked for a
            // certified batch: run the fallback anyway.
            let solve = |g: &Graph| {
                let (sol, tel) = algorithm.execute(
                    g,
                    measured_alpha(g),
                    seed,
                    &RunOptions::default(),
                    sim_threads,
                )?;
                *telemetry.borrow_mut() = Some(tel);
                Ok(sol)
            };
            self.maintainer
                .resolve_with(solve)
                .map_err(|e| format!("re-solve failed: {e}"))?;
            outcome.repaired = false;
            outcome.added.clear();
            outcome.weight = self.maintainer.weight();
            outcome.drift_estimate = self.maintainer.drift_estimate();
        }
        self.alpha = measured_alpha(self.maintainer.graph());
        let repair = RepairStats {
            repaired: outcome.repaired,
            added: outcome.added.len() as u64,
            undominated_before: outcome.undominated_before as u64,
            drift_estimate: outcome.drift_estimate,
            batches_since_solve: self.maintainer.batches_since_solve() as u64,
            chain: self.maintainer.chain(),
        };
        Ok((self.result_snapshot(telemetry.into_inner()), repair))
    }

    /// Forces a certified full re-solve on the current graph.
    ///
    /// # Errors
    ///
    /// A job-level message when the solve fails.
    pub fn resolve(&mut self, sim_threads: usize) -> Result<(JobResult, RepairStats), String> {
        let algorithm = self.algorithm;
        let seed = self.seed;
        let telemetry: RefCell<Option<Telemetry>> = RefCell::new(None);
        let solve = |g: &Graph| {
            let (sol, tel) = algorithm.execute(
                g,
                measured_alpha(g),
                seed,
                &RunOptions::default(),
                sim_threads,
            )?;
            *telemetry.borrow_mut() = Some(tel);
            Ok(sol)
        };
        self.maintainer
            .resolve_with(solve)
            .map_err(|e| format!("re-solve failed: {e}"))?;
        self.alpha = measured_alpha(self.maintainer.graph());
        let repair = RepairStats {
            repaired: false,
            added: 0,
            undominated_before: 0,
            drift_estimate: self.maintainer.drift_estimate(),
            batches_since_solve: self.maintainer.batches_since_solve() as u64,
            chain: self.maintainer.chain(),
        };
        Ok((self.result_snapshot(telemetry.into_inner()), repair))
    }

    /// Quality-accounts the maintained set on the current graph. The
    /// planted reference (if the instance had one) is stale after any
    /// mutation, so sessions always account against exact/packing
    /// references; rounds and message counters reflect only what this
    /// batch actually simulated (all zero for a kept local repair).
    fn result_snapshot(&self, telemetry: Option<Telemetry>) -> JobResult {
        let g = self.maintainer.graph();
        let sol = DsResult::from_flags(g, self.maintainer.in_ds().to_vec(), 0, None);
        let undominated = verify::undominated_nodes(g, &sol.in_ds).len();
        let valid = undominated == 0;
        let guarantee = self.algorithm.guarantee(self.alpha, g.max_degree());
        let account = quality::account(g, &sol, None, guarantee, valid, false);
        let tel = telemetry.unwrap_or_default();
        JobResult {
            n: g.n() as u64,
            m: g.m() as u64,
            max_degree: g.max_degree() as u64,
            alpha: self.alpha as u64,
            graph_digest: edge_digest(g),
            ds_size: sol.size as u64,
            ds_weight: sol.weight,
            valid,
            undominated: undominated as u64,
            reference: account.reference,
            opt_estimate: account.opt_estimate,
            ratio: account.ratio,
            guarantee: account.guarantee,
            within_guarantee: account.within_guarantee,
            flagged: account.flagged,
            rounds: tel.rounds as u64,
            round_budget: self.algorithm.round_budget(self.alpha, g.max_degree()) as u64,
            messages: tel.total_messages as u64,
            total_bits: tel.total_bits as u64,
            max_message_bits: tel.max_message_bits as u64,
            budget_violations: tel.budget_violations as u64,
            dropped_messages: tel.dropped_messages as u64,
            members: None,
        }
    }
}

/// The daemon's session registry: ids to live sessions. Shared across
/// connections — a session opened on one connection is addressable from
/// any other (ids are capabilities only in the loopback-trust sense the
/// whole daemon operates under).
#[derive(Default)]
pub struct SessionTable {
    sessions: Mutex<HashMap<u64, Arc<Mutex<Session>>>>,
    next_id: AtomicU64,
}

impl SessionTable {
    /// An empty table.
    pub fn new() -> Self {
        SessionTable::default()
    }

    /// Registers a session, returning its id (ids start at 1; 0 is the
    /// wire's "no session" sentinel).
    pub fn insert(&self, session: Session) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.sessions
            .lock()
            .expect("session table poisoned")
            .insert(id, Arc::new(Mutex::new(session)));
        id
    }

    /// Looks up a live session.
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        self.sessions
            .lock()
            .expect("session table poisoned")
            .get(&id)
            .cloned()
    }

    /// Drops a session; returns whether it existed.
    pub fn remove(&self, id: u64) -> bool {
        self.sessions
            .lock()
            .expect("session table poisoned")
            .remove(&id)
            .is_some()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.lock().expect("session table poisoned").len()
    }

    /// Whether no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
