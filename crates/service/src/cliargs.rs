//! Tiny shared argument helpers for the workspace's service binaries
//! (`arbodomd`, `arbodom-client`, `svc_load`): value-or-exit parsing
//! with one error-message format and exit code (2, the usage-error
//! convention of the `scenarios` CLI).

/// Returns the flag's value or exits with status 2.
pub fn required<'a>(value: Option<&'a str>, flag: &str) -> &'a str {
    value.unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
}

/// Parses the flag's value or exits with status 2.
pub fn parsed<T: std::str::FromStr>(value: Option<&str>, flag: &str) -> T {
    required(value, flag)
        .parse()
        .unwrap_or_else(|_| usage_error(&format!("{flag} needs a valid number")))
}

/// Prints a usage error and exits with status 2.
pub fn usage_error(msg: &str) -> ! {
    eprintln!("{msg} (see --help)");
    std::process::exit(2)
}
