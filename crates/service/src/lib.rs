//! `arbodomd` — the serving layer over the scenario engine.
//!
//! Everything below PR 4 was batch: one-shot CLIs building a graph,
//! running an algorithm, exiting. This crate turns the stack into a
//! long-running **batch-query daemon**: a std-only threaded TCP server
//! that amortizes graph construction across queries (a byte-budgeted
//! LRU cache keyed by [`arbodom_graph::digest::edge_digest`]) and fans
//! jobs across a work-stealing pool driving the thread-capable
//! `run_*_on` simulator entry points. Since protocol v2 it also serves
//! **dynamic graphs**: a session protocol holds `(graph, solution,
//! quality)` state server-side and maintains the dominating set under
//! edge churn by incremental local repair
//! ([`arbodom_core::repair`]), falling back to a certified full
//! re-solve when the quality drift bound trips.
//!
//! # Service cookbook
//!
//! **Run the daemon.**
//!
//! ```text
//! cargo run --release -p arbodom-service --bin arbodomd -- --addr 127.0.0.1:4310 --workers 8
//! ```
//!
//! **Talk to it** with the bundled CLI:
//!
//! ```text
//! arbodom-client ping      --addr 127.0.0.1:4310
//! arbodom-client run       --addr 127.0.0.1:4310 --generator random-tree --n 1000
//! arbodom-client run       --addr 127.0.0.1:4310 --edge-list my_graph.txt --members
//! arbodom-client run       --addr 127.0.0.1:4310 --cell trees-exact 0 0 0 0
//! arbodom-client stats     --addr 127.0.0.1:4310
//! arbodom-client shutdown  --addr 127.0.0.1:4310
//! ```
//!
//! **Or programmatically** — boot an in-process daemon on an ephemeral
//! port and submit a batch:
//!
//! ```
//! use arbodom_service::{Client, GraphSource, JobSpec, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let jobs = vec![JobSpec::new(GraphSource::Inline {
//!     n: 4,
//!     edges: vec![(0, 1), (1, 2), (2, 3)],
//!     weights: None,
//! })];
//! let replies = client.submit(&jobs)?;
//! let result = replies[0].as_ref().expect("job succeeds");
//! assert!(result.valid && !result.flagged);
//! server.shutdown();
//! # Ok::<(), arbodom_service::ServiceError>(())
//! ```
//!
//! **Serve a mutating graph** — open a session, stream edge churn at it,
//! and let the server keep the dominating set valid (local repair per
//! batch, certified re-solve on demand or when drift accumulates):
//!
//! ```
//! use arbodom_service::{
//!     Client, DeltaSpec, GraphSource, JobSpec, Server, ServerConfig, SessionPolicy,
//! };
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let spec = JobSpec::new(GraphSource::Inline {
//!     n: 6,
//!     edges: vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
//!     weights: None,
//! });
//! let (session, opened) = client.open(&spec)?;
//! assert!(opened.valid);
//!
//! // One churn batch: drop an edge, add another. Repair keeps the set
//! // valid without re-running the distributed algorithm.
//! let delta = DeltaSpec {
//!     inserts: vec![(0, 5)],
//!     deletes: vec![(2, 3)],
//! };
//! let update = client.mutate(session, &delta, SessionPolicy::Repair)?;
//! assert!(update.result.valid);
//! assert_eq!(update.result.rounds, 0, "local repair simulates nothing");
//!
//! // Regular jobs can query the session's live graph...
//! let snap = client.submit(&[JobSpec::new(GraphSource::Session { id: session })])?;
//! assert_eq!(snap[0].as_ref().unwrap().graph_digest, update.result.graph_digest);
//!
//! // ...and a certified re-solve re-anchors the drift estimate.
//! let resolved = client.resolve_session(session)?;
//! assert!(!resolved.repair.repaired);
//! assert!(client.release(session)?);
//! server.shutdown();
//! # Ok::<(), arbodom_service::ServiceError>(())
//! ```
//!
//! # Protocol
//!
//! Versioned length-prefixed frames (a version byte, a 4-byte
//! little-endian payload length, then the payload encoded with the
//! CONGEST [`arbodom_congest::Wire`] codecs); see [`protocol`] for the
//! message grammar and the negotiation rules (the first frame pins a
//! connection's version; session requests are v2-only and v1
//! connections get a typed `UnsupportedVersion` reply). A batch request
//! is answered with one [`protocol::Response::Job`] frame per job **in
//! submission order** plus a `BatchDone` trailer, which makes the
//! response stream byte-deterministic: identical batches yield
//! identical bytes at any server worker count (the end-to-end tests
//! compare raw frames).
//!
//! # Job specs
//!
//! A job names a graph ([`GraphSource`]: inline edge list, named
//! generator + params + seed, a registered scenario cell, or a live
//! session snapshot), optionally an algorithm override, a seed, and
//! whether to return the member list. Results carry the solution, the
//! certified approximation ratio from [`arbodom_scenarios::quality`]
//! (exact / planted / packing-lb reference), the round count against
//! the theorem budget, and the full simulator telemetry.
//!
//! # Cache semantics
//!
//! Graphs are cached by edge digest with **byte-budgeted** LRU eviction
//! ([`cache::GraphCache`]): each entry is charged its
//! [`arbodom_graph::Graph::memory_footprint`] (plus any planted set)
//! and least-recently-used instances are evicted until resident bytes
//! fit the budget, so one million-node instance and a thousand toy
//! graphs are accounted at their true cost. A spec index maps encoded
//! sources to digests so repeated generator/scenario queries skip
//! construction entirely. Session graphs are never cached — they mutate.
//! Caching changes *when* work happens, never *what* a job returns —
//! results are pure functions of the job spec and the server scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cliargs;
mod client;
mod error;
pub mod jobs;
pub mod obs;
pub mod protocol;
pub mod scheduler;
mod server;
pub mod session;

pub use client::{Client, ClientBuilder, RetryPolicy};
pub use error::ServiceError;
pub use jobs::{execute_job, open_session, ExecContext};
pub use obs::ServiceObs;
pub use protocol::{
    CacheStats, DeltaSpec, FrameAssembler, GraphSource, JobResult, JobSpec, RepairStats, Request,
    Response, ServerLimits, SessionPolicy, SessionUpdate, PROTOCOL_V1, PROTOCOL_V2, PROTOCOL_V3,
};
pub use scheduler::Scheduler;
pub use server::{Server, ServerConfig};
pub use session::{Session, SessionLimits, SessionLost, SessionTable};
