//! `arbodomd` — the serving layer over the scenario engine.
//!
//! Everything below PR 4 was batch: one-shot CLIs building a graph,
//! running an algorithm, exiting. This crate turns the stack into a
//! long-running **batch-query daemon**: a std-only threaded TCP server
//! that amortizes graph construction across queries (an LRU cache keyed
//! by [`arbodom_graph::digest::edge_digest`]) and fans jobs across a
//! work-stealing pool driving the thread-capable `run_*_on` simulator
//! entry points.
//!
//! # Service cookbook
//!
//! **Run the daemon.**
//!
//! ```text
//! cargo run --release -p arbodom-service --bin arbodomd -- --addr 127.0.0.1:4310 --workers 8
//! ```
//!
//! **Talk to it** with the bundled CLI:
//!
//! ```text
//! arbodom-client ping      --addr 127.0.0.1:4310
//! arbodom-client run       --addr 127.0.0.1:4310 --generator random-tree --n 1000
//! arbodom-client run       --addr 127.0.0.1:4310 --edge-list my_graph.txt --members
//! arbodom-client run       --addr 127.0.0.1:4310 --cell trees-exact 0 0 0 0
//! arbodom-client stats     --addr 127.0.0.1:4310
//! arbodom-client shutdown  --addr 127.0.0.1:4310
//! ```
//!
//! **Or programmatically** — boot an in-process daemon on an ephemeral
//! port and submit a batch:
//!
//! ```
//! use arbodom_service::{Client, GraphSource, JobSpec, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let jobs = vec![JobSpec::new(GraphSource::Inline {
//!     n: 4,
//!     edges: vec![(0, 1), (1, 2), (2, 3)],
//!     weights: None,
//! })];
//! let replies = client.submit(&jobs)?;
//! let result = replies[0].as_ref().expect("job succeeds");
//! assert!(result.valid && !result.flagged);
//! server.shutdown();
//! # Ok::<(), arbodom_service::ServiceError>(())
//! ```
//!
//! # Protocol
//!
//! Length-prefixed frames (4-byte little-endian payload length, then the
//! payload encoded with the CONGEST [`arbodom_congest::Wire`] codecs);
//! see [`protocol`] for the message grammar. A batch request is answered
//! with one [`protocol::Response::Job`] frame per job **in submission
//! order** plus a `BatchDone` trailer, which makes the response stream
//! byte-deterministic: identical batches yield identical bytes at any
//! server worker count (the end-to-end tests compare raw frames).
//!
//! # Job specs
//!
//! A job names a graph ([`GraphSource`]: inline edge list, named
//! generator + params + seed, or a registered scenario cell), optionally
//! an algorithm override, a seed, and whether to return the member list.
//! Results carry the solution, the certified approximation ratio from
//! [`arbodom_scenarios::quality`] (exact / planted / packing-lb
//! reference), the round count against the theorem budget, and the full
//! simulator telemetry.
//!
//! # Cache semantics
//!
//! Graphs are cached by edge digest with LRU eviction
//! ([`cache::GraphCache`]); a spec index maps encoded sources to digests
//! so repeated generator/scenario queries skip construction entirely.
//! Caching changes *when* work happens, never *what* a job returns —
//! results are pure functions of the job spec and the server scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cliargs;
mod client;
mod error;
pub mod jobs;
pub mod protocol;
pub mod scheduler;
mod server;

pub use client::Client;
pub use error::ServiceError;
pub use jobs::{execute_job, ExecContext};
pub use protocol::{CacheStats, GraphSource, JobResult, JobSpec, Request, Response};
pub use scheduler::Scheduler;
pub use server::{Server, ServerConfig};
