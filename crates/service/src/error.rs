//! Error type shared by the daemon, the client library, and the CLI.

use arbodom_congest::WireError;
use std::fmt;

/// Anything that can go wrong talking to (or inside) `arbodomd`.
#[derive(Debug)]
pub enum ServiceError {
    /// An underlying socket or file error.
    Io(std::io::Error),
    /// A malformed message payload.
    Wire(WireError),
    /// A well-formed frame that violates the protocol state machine
    /// (trailing bytes, unexpected response kind, …).
    Protocol(String),
    /// An error the server reported for the whole connection.
    Remote(String),
    /// A frame header declared a payload above
    /// [`crate::protocol::MAX_FRAME_LEN`].
    FrameTooLarge(u64),
    /// The server rejected the connection's protocol version, or a
    /// request gated behind a newer version than the connection pinned
    /// (typed counterpart of
    /// [`crate::protocol::Response::UnsupportedVersion`]).
    UnsupportedVersion {
        /// The version byte the client sent.
        got: u8,
        /// Oldest version the server speaks.
        min: u8,
        /// Newest version the server speaks.
        max: u8,
    },
    /// Admission control shed the request and the client's retry budget
    /// is exhausted (typed counterpart of
    /// [`crate::protocol::Response::Overloaded`]).
    Overloaded {
        /// The server's suggested backoff before retrying, in
        /// milliseconds.
        retry_after_ms: u64,
        /// Admitted-but-unfinished jobs at shed time.
        queue_depth: u64,
    },
    /// The peer closed the connection cleanly between frames.
    Closed,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "i/o error: {e}"),
            ServiceError::Wire(e) => write!(f, "wire error: {e}"),
            ServiceError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServiceError::Remote(msg) => write!(f, "server error: {msg}"),
            ServiceError::FrameTooLarge(len) => write!(f, "frame too large: {len} bytes"),
            ServiceError::UnsupportedVersion { got, min, max } => write!(
                f,
                "unsupported protocol version {got} (server speaks {min}..={max})"
            ),
            ServiceError::Overloaded {
                retry_after_ms,
                queue_depth,
            } => write!(
                f,
                "server overloaded (queue depth {queue_depth}, retry after {retry_after_ms} ms)"
            ),
            ServiceError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}
