//! The `arbodomd` daemon binary.
//!
//! ```text
//! arbodomd [--addr HOST:PORT] [--workers N] [--sim-threads N]
//!          [--cache-mb N] [--session-ttl-secs N] [--max-sessions N]
//!          [--max-pending-jobs N] [--max-pending-mb N]
//!          [--per-conn-inflight N] [--idle-timeout-secs N]
//!          [--sim-obs] [--quick|--full]
//! ```
//!
//! Runs until a client sends a `Shutdown` request (`arbodom-client
//! shutdown`). `--quick` resolves scenario-cell jobs against the quick
//! size sweeps (the CI convention, also via `ARBODOM_QUICK=1`).
//! `--sim-obs` additionally records per-round simulator phase timings
//! into the metrics registry (scrape with `arbodom-client metrics`).
//! The admission knobs (`--max-pending-jobs`, `--max-pending-mb`,
//! `--per-conn-inflight`) bound how much work the daemon holds before
//! shedding with a typed `Overloaded` reply; `--idle-timeout-secs 0`
//! disables the slow-loris defense. On shutdown the daemon prints a
//! final metrics snapshot to stderr.

use arbodom_scenarios::Scale;
use arbodom_service::cliargs::{parsed, required};
use arbodom_service::{Server, ServerConfig};

fn main() {
    let mut addr = "127.0.0.1:4310".to_string();
    let mut cfg = ServerConfig {
        scale: Scale::from_env(),
        ..ServerConfig::default()
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    while let Some(arg) = it.next() {
        match arg {
            "--addr" => addr = required(it.next(), "--addr").to_string(),
            "--workers" => cfg.workers = parsed(it.next(), "--workers"),
            "--sim-threads" => cfg.sim_threads = parsed(it.next(), "--sim-threads"),
            "--cache-mb" => cfg.cache_bytes = parsed::<usize>(it.next(), "--cache-mb") << 20,
            "--session-ttl-secs" => {
                cfg.session_ttl =
                    std::time::Duration::from_secs(parsed::<u64>(it.next(), "--session-ttl-secs"));
            }
            "--max-sessions" => cfg.max_sessions = parsed(it.next(), "--max-sessions"),
            "--max-pending-jobs" => cfg.max_pending_jobs = parsed(it.next(), "--max-pending-jobs"),
            "--max-pending-mb" => {
                cfg.max_pending_bytes = parsed::<usize>(it.next(), "--max-pending-mb") << 20;
            }
            "--per-conn-inflight" => {
                cfg.per_conn_inflight = parsed(it.next(), "--per-conn-inflight");
            }
            "--idle-timeout-secs" => {
                let secs = parsed::<u64>(it.next(), "--idle-timeout-secs");
                cfg.idle_timeout = (secs > 0).then(|| std::time::Duration::from_secs(secs));
            }
            "--sim-obs" => cfg.sim_obs = true,
            "--quick" => cfg.scale = Scale::Quick,
            "--full" => cfg.scale = Scale::Full,
            "--help" | "help" => usage(0),
            other => {
                eprintln!("unknown option: {other}\n");
                usage(2);
            }
        }
    }
    let server = Server::bind(&addr, cfg).unwrap_or_else(|e| {
        eprintln!("arbodomd: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    println!(
        "arbodomd listening on {} ({} workers, {} sim thread(s), cache {} MiB, {} scale)",
        server.local_addr(),
        cfg.workers,
        cfg.sim_threads,
        cfg.cache_bytes >> 20,
        cfg.scale.label(),
    );
    // Registry handles are Arc-backed, so this clone keeps reading live
    // counters after the accept loop (which refreshes the resource
    // gauges one last time on exit) has finished.
    let registry = server.registry();
    server.wait();
    final_snapshot(&registry);
    println!("arbodomd: shutdown complete");
}

/// The shutdown report: a terse operational summary on stderr so that
/// even a daemon nobody scraped leaves its lifetime totals in the log.
fn final_snapshot(registry: &arbodom_obs::Registry) {
    use arbodom_service::obs;
    let count = |name: &str| registry.counter(name).get();
    let gauge = |name: &str| registry.gauge(name).get();
    eprintln!(
        "arbodomd final metrics: jobs={} job_errors={} panics_caught={} \
         sessions_opened={} sessions_evicted={} repairs={} repair_fallbacks={} \
         cache_hits={} cache_misses={} cache_evictions={}",
        count(obs::JOBS_TOTAL),
        count(obs::JOB_ERRORS_TOTAL),
        count(obs::PANICS_CAUGHT_TOTAL),
        count(obs::SESSIONS_OPENED_TOTAL),
        gauge(obs::SESSION_EVICTIONS),
        count(obs::REPAIRS_TOTAL),
        count(obs::REPAIR_FALLBACKS_TOTAL),
        gauge(obs::CACHE_HITS),
        gauge(obs::CACHE_MISSES),
        gauge(obs::CACHE_EVICTIONS),
    );
}

fn usage(code: i32) -> ! {
    eprintln!(
        "arbodomd — event-driven batch-query dominating-set daemon\n\n\
         USAGE:\n  arbodomd [OPTIONS]\n\n\
         OPTIONS:\n  \
         --addr HOST:PORT   bind address (default 127.0.0.1:4310; port 0 = ephemeral)\n  \
         --workers N        scheduler worker threads (default 4)\n  \
         --sim-threads N    simulator threads per job (default 1; results identical)\n  \
         --cache-mb N       graph-cache budget in MiB of instance memory (default 256)\n  \
         --session-ttl-secs N  evict sessions idle longer than N seconds (default 900)\n  \
         --max-sessions N   cap on live sessions; LRU-evicted past it (default 64)\n  \
         --max-pending-jobs N   admission cap on admitted-but-unfinished jobs (default 256)\n  \
         --max-pending-mb N     admission cap on pending request payload MiB (default 64)\n  \
         --per-conn-inflight N  in-flight heavy requests per connection (default 16)\n  \
         --idle-timeout-secs N  close idle connections after N seconds; 0 disables (default 900)\n  \
         --sim-obs          record per-round simulator phase timings in the metrics registry\n  \
         --quick            resolve scenario cells at quick scale (CI; also ARBODOM_QUICK=1)\n  \
         --full             resolve scenario cells at full scale (default)"
    );
    std::process::exit(code)
}
