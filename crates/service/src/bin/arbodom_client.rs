//! The `arbodom-client` CLI: drive a running `arbodomd`.
//!
//! ```text
//! arbodom-client ping     [--addr A]
//! arbodom-client stats    [--addr A]
//! arbodom-client limits   [--addr A]
//! arbodom-client metrics  [--addr A] [--prom | --check [--expect-shed]]
//! arbodom-client shutdown [--addr A]
//! arbodom-client run      [--addr A] [--members] [--alg SPEC] [--seed S]
//!                         [--retries N]
//!                         (--edge-list FILE
//!                          | --generator FAMILY --n N [--gen-seed S]
//!                          | --cell NAME SIZE WEIGHT LOSS SEED)
//! ```
//!
//! `limits` performs the protocol-v3 `Hello` handshake and prints the
//! server's advertised protocol range and admission limits.
//!
//! `metrics` scrapes the daemon's registry: the default output is a
//! human-readable table (histograms summarized as count/p50/p95/p99),
//! `--prom` dumps the raw Prometheus text exposition, and `--check`
//! validates the scrape (parse + histogram structure + nonzero request
//! counters) and exits nonzero on failure — the CI smoke hook.
//! `--check --expect-shed` additionally requires that admission control
//! shed at least one request **and** that no job errored — the overload
//! smoke assertion.
//!
//! `run` retries server sheds with exponential backoff (honoring the
//! server's `retry_after_ms` hint); `--retries 0` surfaces the first
//! shed as an error.
//!
//! `FAMILY` ∈ `random-tree | forest-union:<α> | gnp:<avg-degree> |
//! planar:<p> | ktree:<k>`; `SPEC` ∈ `weighted:<ε> | unknown-delta:<ε> |
//! randomized:<t> | general:<k>`.

use arbodom_scenarios::{Algorithm, Family};
use arbodom_service::cliargs::{parsed, required};
use arbodom_service::{Client, GraphSource, JobSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        usage(2)
    };
    match command {
        "ping" => control(&args[1..], |c| {
            c.ping()?;
            println!("pong");
            Ok(())
        }),
        "stats" => control(&args[1..], |c| {
            let s = c.stats()?;
            println!(
                "cache: {} entries, {}/{} bytes, {} hits, {} misses, {} evictions",
                s.entries, s.bytes, s.capacity, s.hits, s.misses, s.evictions
            );
            println!(
                "sessions: {} live, {} bytes, {} evicted",
                s.sessions, s.session_bytes, s.session_evictions
            );
            Ok(())
        }),
        "shutdown" => control(&args[1..], |c| {
            c.shutdown_server()?;
            println!("daemon shutting down");
            Ok(())
        }),
        "limits" => control(&args[1..], |c| {
            let l = c.hello()?;
            println!("protocol: v{}..=v{}", l.protocol_min, l.protocol_max);
            println!("workers: {}", l.workers);
            println!(
                "admission: max_pending_jobs={} max_pending_bytes={} per_conn_inflight={}",
                l.max_pending_jobs, l.max_pending_bytes, l.per_conn_inflight
            );
            match l.idle_timeout_ms {
                0 => println!("idle_timeout: disabled"),
                ms => println!("idle_timeout: {ms} ms"),
            }
            println!(
                "frames: max_frame_len={} max_batch_jobs={}",
                l.max_frame_len, l.max_batch_jobs
            );
            Ok(())
        }),
        "metrics" => metrics(&args[1..]),
        "run" => run(&args[1..]),
        "help" | "--help" => usage(0),
        other => {
            eprintln!("unknown command: {other}\n");
            usage(2);
        }
    }
}

fn control(
    args: &[String],
    op: impl FnOnce(&mut Client) -> Result<(), arbodom_service::ServiceError>,
) {
    let mut addr = default_addr();
    let mut it = args.iter().map(String::as_str);
    while let Some(arg) = it.next() {
        match arg {
            "--addr" => addr = required(it.next(), "--addr").to_string(),
            other => {
                eprintln!("unknown option: {other}\n");
                usage(2);
            }
        }
    }
    let mut client = connect(&addr);
    if let Err(e) = op(&mut client) {
        eprintln!("arbodom-client: {e}");
        std::process::exit(1);
    }
}

fn metrics(args: &[String]) {
    let mut addr = default_addr();
    let mut prom = false;
    let mut check = false;
    let mut expect_shed = false;
    let mut it = args.iter().map(String::as_str);
    while let Some(arg) = it.next() {
        match arg {
            "--addr" => addr = required(it.next(), "--addr").to_string(),
            "--prom" => prom = true,
            "--check" => check = true,
            "--expect-shed" => expect_shed = true,
            other => {
                eprintln!("unknown option: {other}\n");
                usage(2);
            }
        }
    }
    let mut client = connect(&addr);
    let text = client.metrics().unwrap_or_else(|e| {
        eprintln!("arbodom-client: {e}");
        std::process::exit(1);
    });
    if prom {
        print!("{text}");
        return;
    }
    let exp = arbodom_obs::prom::parse(&text).unwrap_or_else(|e| {
        eprintln!("arbodom-client: unparseable metrics exposition: {e}");
        std::process::exit(1);
    });
    if check {
        if let Err(e) = exp.validate_histograms() {
            eprintln!("arbodom-client: inconsistent histogram series: {e}");
            std::process::exit(1);
        }
        let served: f64 = exp
            .with_prefix(arbodom_service::obs::REQUESTS_TOTAL_PREFIX)
            .map(|s| s.value)
            .sum();
        if served <= 0.0 {
            eprintln!("arbodom-client: scrape has zeroed request counters (no traffic observed)");
            std::process::exit(1);
        }
        let shed = exp
            .value(arbodom_service::obs::REQUESTS_SHED_TOTAL)
            .unwrap_or(0.0);
        if expect_shed {
            if shed <= 0.0 {
                eprintln!("arbodom-client: expected admission control to shed, but nothing was");
                std::process::exit(1);
            }
            let job_errors = exp
                .value(arbodom_service::obs::JOB_ERRORS_TOTAL)
                .unwrap_or(0.0);
            if job_errors > 0.0 {
                eprintln!("arbodom-client: {job_errors} job error(s) during the overload run");
                std::process::exit(1);
            }
        }
        println!(
            "metrics ok: {} samples, {} requests observed, {} shed",
            exp.samples.len(),
            served,
            shed
        );
        return;
    }
    print_metrics_table(&exp);
}

/// Renders a parsed exposition as a human table: scalar metrics as
/// `name value`, each histogram as one `count/sum/p50/p95/p99` line
/// (quantiles read off the cumulative `le` buckets, so they inherit the
/// registry's ≤2× bucket-upper-bound guarantee).
fn print_metrics_table(exp: &arbodom_obs::prom::Exposition) {
    for (name, kind) in &exp.types {
        match kind.as_str() {
            "counter" | "gauge" => {
                let value = exp.value(name).unwrap_or(0.0);
                println!("{name:<40} {value}");
            }
            "histogram" => {
                let count = exp.value(&format!("{name}_count")).unwrap_or(0.0);
                if count == 0.0 {
                    println!("{name:<40} (no observations)");
                    continue;
                }
                let sum = exp.value(&format!("{name}_sum")).unwrap_or(0.0);
                let bucket_name = format!("{name}_bucket");
                let buckets: Vec<(f64, f64)> = exp
                    .samples
                    .iter()
                    .filter(|s| s.name == bucket_name)
                    .filter_map(|s| {
                        let le = match s.label("le")? {
                            "+Inf" => f64::INFINITY,
                            v => v.parse().ok()?,
                        };
                        Some((le, s.value))
                    })
                    .collect();
                let q = |q: f64| -> String {
                    let rank = (q * count).ceil().max(1.0);
                    let le = buckets
                        .iter()
                        .find(|(_, cum)| *cum >= rank)
                        .map_or(f64::INFINITY, |(le, _)| *le);
                    if le.is_infinite() {
                        "+Inf".to_string()
                    } else {
                        format!("{le}")
                    }
                };
                println!(
                    "{name:<40} count={count} sum={sum} p50<={} p95<={} p99<={}",
                    q(0.50),
                    q(0.95),
                    q(0.99)
                );
            }
            _ => {}
        }
    }
}

fn run(args: &[String]) {
    let mut addr = default_addr();
    let mut members = false;
    let mut algorithm = None;
    let mut seed = 0u64;
    let mut gen_seed = 42u64;
    let mut retries: Option<u32> = None;
    let mut edge_list: Option<String> = None;
    let mut generator: Option<String> = None;
    let mut n: Option<u32> = None;
    let mut cell: Option<(String, u32, u32, u32, u64)> = None;
    let mut it = args.iter().map(String::as_str);
    while let Some(arg) = it.next() {
        match arg {
            "--addr" => addr = required(it.next(), "--addr").to_string(),
            "--members" => members = true,
            "--retries" => retries = Some(parsed(it.next(), "--retries")),
            "--alg" => algorithm = Some(parse_algorithm(required(it.next(), "--alg"))),
            "--seed" => seed = parsed(it.next(), "--seed"),
            "--gen-seed" => gen_seed = parsed(it.next(), "--gen-seed"),
            "--edge-list" => edge_list = Some(required(it.next(), "--edge-list").to_string()),
            "--generator" => generator = Some(required(it.next(), "--generator").to_string()),
            "--n" => n = Some(parsed(it.next(), "--n")),
            "--cell" => {
                let name = required(it.next(), "--cell").to_string();
                cell = Some((
                    name,
                    parsed(it.next(), "--cell SIZE"),
                    parsed(it.next(), "--cell WEIGHT"),
                    parsed(it.next(), "--cell LOSS"),
                    parsed(it.next(), "--cell SEED"),
                ));
            }
            other => {
                eprintln!("unknown option: {other}\n");
                usage(2);
            }
        }
    }
    let source = match (edge_list, generator, cell) {
        (Some(path), None, None) => inline_from_file(&path),
        (None, Some(family), None) => GraphSource::Generator {
            family: parse_family(&family),
            n: n.unwrap_or_else(|| {
                eprintln!("--generator needs --n\n");
                usage(2)
            }),
            weights: arbodom_graph::weights::WeightModel::Unit,
            seed: gen_seed,
        },
        (None, None, Some((name, size_idx, weight_idx, loss_idx, seed_idx))) => {
            GraphSource::ScenarioCell {
                name,
                size_idx,
                weight_idx,
                loss_idx,
                seed_idx,
            }
        }
        _ => {
            eprintln!("run needs exactly one of --edge-list, --generator, --cell\n");
            usage(2);
        }
    };
    let job = JobSpec {
        source,
        algorithm,
        seed,
        return_members: members,
    };
    let mut builder = Client::builder();
    if let Some(retries) = retries {
        builder = builder.retries(retries);
    }
    let mut client = builder.connect(&addr).unwrap_or_else(|e| {
        eprintln!("arbodom-client: cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let replies = client
        .submit(std::slice::from_ref(&job))
        .unwrap_or_else(|e| {
            eprintln!("arbodom-client: {e}");
            std::process::exit(1);
        });
    match &replies[0] {
        Err(msg) => {
            eprintln!("job failed: {msg}");
            std::process::exit(1);
        }
        Ok(r) => {
            println!(
                "n={} m={} Δ={} α={} digest={:#018x}",
                r.n, r.m, r.max_degree, r.alpha, r.graph_digest
            );
            println!(
                "ds: size={} weight={} valid={} undominated={}",
                r.ds_size, r.ds_weight, r.valid, r.undominated
            );
            println!(
                "quality: ratio={:.4} vs {} reference {:.2} (guarantee {:.2}, within={}, flagged={})",
                r.ratio,
                r.reference.label(),
                r.opt_estimate,
                r.guarantee,
                r.within_guarantee,
                r.flagged
            );
            println!(
                "rounds: {}/{} budget; messages={} bits={} max_msg_bits={} budget_violations={} dropped={}",
                r.rounds,
                r.round_budget,
                r.messages,
                r.total_bits,
                r.max_message_bits,
                r.budget_violations,
                r.dropped_messages
            );
            if let Some(ms) = &r.members {
                println!(
                    "members: {}",
                    ms.iter().map(u32::to_string).collect::<Vec<_>>().join(" ")
                );
            }
        }
    }
}

fn inline_from_file(path: &str) -> GraphSource {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    // The strict reader: malformed files are rejected client-side with
    // the same typed errors the daemon would produce.
    let g = arbodom_graph::io::read_edge_list(std::io::BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });
    GraphSource::Inline {
        n: g.n() as u32,
        edges: g.edges().map(|(u, v)| (u.get(), v.get())).collect(),
        weights: g.explicit_weights().map(<[u64]>::to_vec),
    }
}

fn parse_family(text: &str) -> Family {
    let (kind, param) = text.split_once(':').unwrap_or((text, ""));
    let num = |what: &str| -> f64 {
        param.parse().unwrap_or_else(|_| {
            eprintln!("family `{kind}` needs a numeric {what}, e.g. `{kind}:2`\n");
            usage(2)
        })
    };
    match kind {
        "random-tree" => Family::RandomTree,
        "forest-union" => Family::ForestUnion {
            alpha: num("α") as usize,
            keep: 1.0,
        },
        "gnp" => Family::Gnp {
            avg_degree: num("average degree"),
        },
        "planar" => Family::RandomPlanar { diag_p: num("p") },
        "ktree" => Family::KTree {
            k: num("k") as usize,
        },
        other => {
            eprintln!("unknown family: {other}\n");
            usage(2);
        }
    }
}

fn parse_algorithm(text: &str) -> Algorithm {
    let (kind, param) = text.split_once(':').unwrap_or((text, ""));
    let num = |what: &str| -> f64 {
        param.parse().unwrap_or_else(|_| {
            eprintln!("algorithm `{kind}` needs a numeric {what}, e.g. `{kind}:0.2`\n");
            usage(2)
        })
    };
    match kind {
        "weighted" => Algorithm::Weighted { eps: num("ε") },
        "unknown-delta" => Algorithm::UnknownDelta { eps: num("ε") },
        "randomized" => Algorithm::Randomized {
            t: num("t") as usize,
        },
        "general" => Algorithm::General {
            k: num("k") as usize,
        },
        other => {
            eprintln!("unknown algorithm: {other}\n");
            usage(2);
        }
    }
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("arbodom-client: cannot connect to {addr}: {e}");
        std::process::exit(1);
    })
}

fn default_addr() -> String {
    std::env::var("ARBODOMD_ADDR").unwrap_or_else(|_| "127.0.0.1:4310".to_string())
}

fn usage(code: i32) -> ! {
    eprintln!(
        "arbodom-client — query a running arbodomd\n\n\
         USAGE:\n  \
         arbodom-client ping|stats|limits|shutdown [--addr A]\n  \
         arbodom-client metrics [--addr A] [--prom | --check [--expect-shed]]\n  \
         arbodom-client run [--addr A] [--members] [--alg SPEC] [--seed S] [--retries N]\n      \
         (--edge-list FILE | --generator FAMILY --n N [--gen-seed S]\n       \
         | --cell NAME SIZE_IDX WEIGHT_IDX LOSS_IDX SEED_IDX)\n\n\
         FAMILY: random-tree | forest-union:<α> | gnp:<deg> | planar:<p> | ktree:<k>\n\
         SPEC:   weighted:<ε> | unknown-delta:<ε> | randomized:<t> | general:<k>\n\
         The default address is 127.0.0.1:4310 (override with --addr or ARBODOMD_ADDR)."
    );
    std::process::exit(code)
}
