//! Daemon-side observability: the pre-resolved metric handles the
//! server records request lifecycles into, and the names they render
//! under in the [`crate::protocol::Request::Metrics`] scrape.
//!
//! The service metrics are **always on** — unlike the simulator's
//! opt-in phase timing ([`arbodom_congest::RunOptions::obs`]), a
//! daemon's request latencies cost a handful of clock reads per request
//! against work that opens sockets and runs distributed simulations, so
//! there is nothing worth switching off. Everything is a side channel:
//! replies are byte-identical with or without a scraper attached.
//!
//! Naming: flat Prometheus-legal names only (no labels). Per-request-
//! kind series put the kind in a `_<kind>` suffix —
//! `arbodom_request_nanos_batch`, `arbodom_requests_total_open` — so
//! the renderer and parser stay label-free; lifecycle phases get one
//! histogram each (`arbodom_decode_nanos` … `arbodom_write_nanos`).
//! Gauges mirroring cache/session state are refreshed from their
//! authoritative sources at scrape time and at shutdown, never
//! incrementally.

use arbodom_obs::{Counter, Gauge, Histogram, Registry};

use crate::protocol::Request;

/// Request kinds a connection can serve, in wire-tag order — the
/// `_<kind>` suffixes of the per-kind series.
pub const REQUEST_KINDS: [&str; 10] = [
    "ping", "batch", "stats", "shutdown", "open", "mutate", "resolve", "release", "metrics",
    "hello",
];

/// Prefix of the per-kind whole-request latency histograms
/// (`arbodom_request_nanos_batch`, …): nanoseconds from a decoded frame
/// to the last response byte handed to the socket.
pub const REQUEST_NANOS_PREFIX: &str = "arbodom_request_nanos_";
/// Prefix of the per-kind request counters
/// (`arbodom_requests_total_batch`, …).
pub const REQUESTS_TOTAL_PREFIX: &str = "arbodom_requests_total_";

/// Nanoseconds decoding one request payload.
pub const DECODE_NANOS: &str = "arbodom_decode_nanos";
/// Nanoseconds a graph-cache lookup held the cache lock (hit or miss).
pub const CACHE_LOOKUP_NANOS: &str = "arbodom_cache_lookup_nanos";
/// Nanoseconds a batch job waited between scheduler submission and a
/// worker picking it up.
pub const QUEUE_WAIT_NANOS: &str = "arbodom_queue_wait_nanos";
/// Nanoseconds one algorithm run (the simulator solve) took.
pub const SOLVE_NANOS: &str = "arbodom_solve_nanos";
/// Nanoseconds encoding one response payload.
pub const ENCODE_NANOS: &str = "arbodom_encode_nanos";
/// Nanoseconds writing one response frame to the socket.
pub const WRITE_NANOS: &str = "arbodom_write_nanos";

/// Batch jobs executed (one per `Response::Job` frame).
pub const JOBS_TOTAL: &str = "arbodom_jobs_total";
/// Batch jobs that returned a job-level error.
pub const JOB_ERRORS_TOTAL: &str = "arbodom_job_errors_total";
/// Panics converted into job-level errors (batch workers and guarded
/// session operations).
pub const PANICS_CAUGHT_TOTAL: &str = "arbodom_panics_caught_total";
/// Sessions successfully opened.
pub const SESSIONS_OPENED_TOTAL: &str = "arbodom_sessions_opened_total";
/// Mutation batches kept by local incremental repair.
pub const REPAIRS_TOTAL: &str = "arbodom_repairs_total";
/// Mutation batches that fell back to (or forced) a full re-solve.
pub const REPAIR_FALLBACKS_TOTAL: &str = "arbodom_repair_fallbacks_total";

/// Graphs resident in the cache (scrape-time mirror).
pub const CACHE_ENTRIES: &str = "arbodom_cache_entries";
/// Bytes resident in the cache (scrape-time mirror).
pub const CACHE_BYTES: &str = "arbodom_cache_bytes";
/// Cache hits so far (scrape-time mirror of the cache's own counter).
pub const CACHE_HITS: &str = "arbodom_cache_hits";
/// Cache misses so far (scrape-time mirror).
pub const CACHE_MISSES: &str = "arbodom_cache_misses";
/// Cache LRU evictions so far (scrape-time mirror).
pub const CACHE_EVICTIONS: &str = "arbodom_cache_evictions";
/// Live sessions (scrape-time mirror).
pub const SESSIONS_LIVE: &str = "arbodom_sessions_live";
/// Resident bytes of live sessions (scrape-time mirror).
pub const SESSION_BYTES: &str = "arbodom_session_bytes";
/// Sessions evicted by policy so far (scrape-time mirror).
pub const SESSION_EVICTIONS: &str = "arbodom_session_evictions";

/// Admitted-but-unfinished jobs (live reactor gauge, the admission
/// queue depth).
pub const PENDING_JOBS: &str = "arbodom_pending_jobs";
/// Admitted-but-unfinished request payload bytes (live reactor gauge).
pub const PENDING_BYTES: &str = "arbodom_pending_bytes";
/// Connections the reactor currently owns (live reactor gauge).
pub const CONNECTIONS_OPEN: &str = "arbodom_connections_open";
/// Connections accepted since boot.
pub const CONNECTIONS_ACCEPTED_TOTAL: &str = "arbodom_connections_accepted_total";
/// Connections closed by the idle timeout (slow-loris defense).
pub const CONNECTIONS_IDLE_CLOSED_TOTAL: &str = "arbodom_connections_idle_closed_total";
/// Requests admitted past admission control (dispatched to workers).
pub const REQUESTS_ADMITTED_TOTAL: &str = "arbodom_requests_admitted_total";
/// Requests shed by admission control (answered `Overloaded`/`Error`
/// without executing).
pub const REQUESTS_SHED_TOTAL: &str = "arbodom_requests_shed_total";

/// The wire request kinds, as indices into the per-kind metric arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqKind {
    /// [`Request::Ping`].
    Ping = 0,
    /// [`Request::Batch`].
    Batch = 1,
    /// [`Request::Stats`].
    Stats = 2,
    /// [`Request::Shutdown`].
    Shutdown = 3,
    /// [`Request::Open`].
    Open = 4,
    /// [`Request::Mutate`].
    Mutate = 5,
    /// [`Request::Resolve`].
    Resolve = 6,
    /// [`Request::Release`].
    Release = 7,
    /// [`Request::Metrics`].
    Metrics = 8,
    /// [`Request::Hello`].
    Hello = 9,
}

impl ReqKind {
    /// The kind of a decoded request.
    pub fn of(request: &Request) -> Self {
        match request {
            Request::Ping => ReqKind::Ping,
            Request::Batch(_) => ReqKind::Batch,
            Request::Stats => ReqKind::Stats,
            Request::Shutdown => ReqKind::Shutdown,
            Request::Open(_) => ReqKind::Open,
            Request::Mutate { .. } => ReqKind::Mutate,
            Request::Resolve { .. } => ReqKind::Resolve,
            Request::Release { .. } => ReqKind::Release,
            Request::Metrics => ReqKind::Metrics,
            Request::Hello => ReqKind::Hello,
        }
    }

    /// The `_<kind>` suffix this kind renders under.
    pub fn label(self) -> &'static str {
        REQUEST_KINDS[self as usize]
    }
}

/// Pre-resolved daemon metric handles, cheap to clone (every handle is
/// an `Arc`). One is built per [`crate::Server`] and threaded into the
/// [`crate::jobs::ExecContext`] every worker clones.
#[derive(Clone, Debug)]
pub struct ServiceObs {
    pub(crate) request_nanos: [Histogram; 10],
    pub(crate) requests_total: [Counter; 10],
    pub(crate) decode: Histogram,
    pub(crate) cache_lookup: Histogram,
    pub(crate) queue_wait: Histogram,
    pub(crate) solve: Histogram,
    pub(crate) encode: Histogram,
    pub(crate) write: Histogram,
    pub(crate) jobs: Counter,
    pub(crate) job_errors: Counter,
    pub(crate) panics: Counter,
    pub(crate) sessions_opened: Counter,
    pub(crate) repairs: Counter,
    pub(crate) repair_fallbacks: Counter,
    pub(crate) cache_entries: Gauge,
    pub(crate) cache_bytes: Gauge,
    pub(crate) cache_hits: Gauge,
    pub(crate) cache_misses: Gauge,
    pub(crate) cache_evictions: Gauge,
    pub(crate) sessions_live: Gauge,
    pub(crate) session_bytes: Gauge,
    pub(crate) session_evictions: Gauge,
    pub(crate) pending_jobs: Gauge,
    pub(crate) pending_bytes: Gauge,
    pub(crate) connections_open: Gauge,
    pub(crate) connections_accepted: Counter,
    pub(crate) connections_idle_closed: Counter,
    pub(crate) requests_admitted: Counter,
    pub(crate) requests_shed: Counter,
}

impl ServiceObs {
    /// Resolves (registering on first use) the daemon metrics in
    /// `registry`.
    pub fn new(registry: &Registry) -> Self {
        ServiceObs {
            request_nanos: std::array::from_fn(|i| {
                registry.histogram(&format!("{REQUEST_NANOS_PREFIX}{}", REQUEST_KINDS[i]))
            }),
            requests_total: std::array::from_fn(|i| {
                registry.counter(&format!("{REQUESTS_TOTAL_PREFIX}{}", REQUEST_KINDS[i]))
            }),
            decode: registry.histogram(DECODE_NANOS),
            cache_lookup: registry.histogram(CACHE_LOOKUP_NANOS),
            queue_wait: registry.histogram(QUEUE_WAIT_NANOS),
            solve: registry.histogram(SOLVE_NANOS),
            encode: registry.histogram(ENCODE_NANOS),
            write: registry.histogram(WRITE_NANOS),
            jobs: registry.counter(JOBS_TOTAL),
            job_errors: registry.counter(JOB_ERRORS_TOTAL),
            panics: registry.counter(PANICS_CAUGHT_TOTAL),
            sessions_opened: registry.counter(SESSIONS_OPENED_TOTAL),
            repairs: registry.counter(REPAIRS_TOTAL),
            repair_fallbacks: registry.counter(REPAIR_FALLBACKS_TOTAL),
            cache_entries: registry.gauge(CACHE_ENTRIES),
            cache_bytes: registry.gauge(CACHE_BYTES),
            cache_hits: registry.gauge(CACHE_HITS),
            cache_misses: registry.gauge(CACHE_MISSES),
            cache_evictions: registry.gauge(CACHE_EVICTIONS),
            sessions_live: registry.gauge(SESSIONS_LIVE),
            session_bytes: registry.gauge(SESSION_BYTES),
            session_evictions: registry.gauge(SESSION_EVICTIONS),
            pending_jobs: registry.gauge(PENDING_JOBS),
            pending_bytes: registry.gauge(PENDING_BYTES),
            connections_open: registry.gauge(CONNECTIONS_OPEN),
            connections_accepted: registry.counter(CONNECTIONS_ACCEPTED_TOTAL),
            connections_idle_closed: registry.counter(CONNECTIONS_IDLE_CLOSED_TOTAL),
            requests_admitted: registry.counter(REQUESTS_ADMITTED_TOTAL),
            requests_shed: registry.counter(REQUESTS_SHED_TOTAL),
        }
    }

    /// Records a kept-vs-fallback maintenance outcome.
    pub(crate) fn record_repair(&self, repaired: bool) {
        if repaired {
            self.repairs.inc();
        } else {
            self.repair_fallbacks.inc();
        }
    }

    /// Refreshes the scrape-time mirror gauges from their authoritative
    /// sources (the cache's own stats and the session table's usage).
    pub(crate) fn set_resource_gauges(
        &self,
        cache: &crate::protocol::CacheStats,
        sessions: (u64, u64, u64),
    ) {
        self.cache_entries.set(cache.entries);
        self.cache_bytes.set(cache.bytes);
        self.cache_hits.set(cache.hits);
        self.cache_misses.set(cache.misses);
        self.cache_evictions.set(cache.evictions);
        let (live, bytes, evictions) = sessions;
        self.sessions_live.set(live);
        self.session_bytes.set(bytes);
        self.session_evictions.set(evictions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_their_wire_requests() {
        assert_eq!(ReqKind::of(&Request::Ping).label(), "ping");
        assert_eq!(ReqKind::of(&Request::Metrics).label(), "metrics");
        assert_eq!(ReqKind::of(&Request::Hello).label(), "hello");
        assert_eq!(ReqKind::of(&Request::Batch(vec![])).label(), "batch");
        assert_eq!(
            ReqKind::of(&Request::Release { session: 1 }).label(),
            "release"
        );
    }

    #[test]
    fn service_obs_registers_prometheus_legal_names() {
        let registry = Registry::new();
        let obs = ServiceObs::new(&registry);
        obs.requests_total[ReqKind::Batch as usize].inc();
        obs.request_nanos[ReqKind::Batch as usize].observe(1_000);
        obs.jobs.add(3);
        let text = registry.render_prometheus();
        let exp = arbodom_obs::prom::parse(&text).expect("scrape parses");
        exp.validate_histograms().expect("histograms consistent");
        assert_eq!(exp.value("arbodom_requests_total_batch"), Some(1.0));
        assert_eq!(exp.value("arbodom_jobs_total"), Some(3.0));
        // Every registered kind series exists, even before traffic.
        for kind in REQUEST_KINDS {
            assert!(
                exp.value(&format!("{REQUESTS_TOTAL_PREFIX}{kind}"))
                    .is_some(),
                "missing counter for {kind}"
            );
        }
        // The admission surface registers too, zeroed before traffic.
        for name in [
            PENDING_JOBS,
            PENDING_BYTES,
            CONNECTIONS_OPEN,
            CONNECTIONS_ACCEPTED_TOTAL,
            CONNECTIONS_IDLE_CLOSED_TOTAL,
            REQUESTS_ADMITTED_TOTAL,
            REQUESTS_SHED_TOTAL,
        ] {
            assert_eq!(
                exp.value(name),
                Some(0.0),
                "missing admission series {name}"
            );
        }
    }
}
