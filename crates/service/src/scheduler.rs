//! A std-only work-stealing job scheduler.
//!
//! The daemon's unit of work is one job closure (resolve graph → run the
//! thread-capable `run_*_on` entry point → account quality). Jobs are
//! pushed round-robin onto per-worker deques; a worker drains its own
//! deque from the front and, when empty, *steals from the back* of the
//! busiest other deque. Back-stealing keeps each deque's front hot for
//! its owner while letting an idle worker relieve a loaded one — the
//! classic Arora–Blumofe–Plaxton shape, implemented with mutexed
//! `VecDeque`s (the workspace is std-only by design; contention is
//! per-push/pop, and the jobs themselves are orders of magnitude
//! heavier).
//!
//! Determinism note: the scheduler reorders *execution*, never results —
//! callers tag jobs with their batch index and reassemble in order, so
//! the response stream is byte-identical at any worker count.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Pairs with `signal` so sleeping workers wake on new work.
    pending: Mutex<usize>,
    signal: Condvar,
    shutdown: AtomicBool,
    next: AtomicUsize,
}

/// A fixed pool of worker threads with per-worker deques and stealing.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Spawns `workers` threads (minimum 1).
    pub fn new(workers: usize) -> Self {
        Self::with_spawn_counter(workers, &Arc::new(AtomicU64::new(0)))
    }

    /// Like [`Scheduler::new`], but ticks `spawned` once per thread the
    /// pool creates. The server threads its global spawn counter through
    /// here so the zero-per-connection-threads property is testable: the
    /// counter must stay flat however many connections arrive.
    pub fn with_spawn_counter(workers: usize, spawned: &Arc<AtomicU64>) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: Mutex::new(0),
            signal: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                spawned.fetch_add(1, Ordering::SeqCst);
                std::thread::Builder::new()
                    .name(format!("arbodomd-worker-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.shared.queues.len()
    }

    /// Enqueues one job. Round-robin placement; an idle worker will steal
    /// it regardless of which deque it lands on.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let slot = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        self.shared.queues[slot]
            .lock()
            .expect("scheduler queue poisoned")
            .push_back(Box::new(job));
        let mut pending = self.shared.pending.lock().expect("pending poisoned");
        *pending += 1;
        drop(pending);
        self.shared.signal.notify_all();
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.signal.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, id: usize) {
    let n = shared.queues.len();
    loop {
        // Own deque first (front), then steal (back) round-robin from the
        // others, starting just after our own slot to spread pressure.
        let mut job = shared.queues[id]
            .lock()
            .expect("scheduler queue poisoned")
            .pop_front();
        if job.is_none() {
            for offset in 1..n {
                let victim = (id + offset) % n;
                job = shared.queues[victim]
                    .lock()
                    .expect("scheduler queue poisoned")
                    .pop_back();
                if job.is_some() {
                    break;
                }
            }
        }
        match job {
            Some(job) => {
                {
                    let mut pending = shared.pending.lock().expect("pending poisoned");
                    *pending = pending.saturating_sub(1);
                }
                // A panicking job must not kill the worker: the pool is
                // fixed-size and never respawns, so an unwinding closure
                // would permanently shrink the daemon's capacity.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let pending = shared.pending.lock().expect("pending poisoned");
                if *pending == 0 {
                    // Timed wait so a missed notification can never hang a
                    // worker across a shutdown.
                    let _unused = shared
                        .signal
                        .wait_timeout(pending, Duration::from_millis(20))
                        .expect("pending poisoned");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;

    #[test]
    fn runs_every_job_exactly_once() {
        let scheduler = Scheduler::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel();
        for i in 0..200u64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            scheduler.spawn(move || {
                counter.fetch_add(i, Ordering::Relaxed);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..200 {
            rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), (0..200).sum::<u64>());
    }

    #[test]
    fn one_slow_job_does_not_strand_the_rest() {
        // With 2 workers and a long job enqueued first, the other worker
        // must steal through the backlog while the long job runs.
        let scheduler = Scheduler::new(2);
        let (tx, rx) = mpsc::channel();
        let gate = Arc::new(Mutex::new(()));
        let hold = gate.lock().unwrap();
        {
            let gate = Arc::clone(&gate);
            let tx = tx.clone();
            scheduler.spawn(move || {
                let _wait = gate.lock().unwrap();
                tx.send("slow").unwrap();
            });
        }
        for _ in 0..20 {
            let tx = tx.clone();
            scheduler.spawn(move || tx.send("fast").unwrap());
        }
        for _ in 0..20 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), "fast");
        }
        drop(hold);
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), "slow");
    }

    #[test]
    fn panicking_job_does_not_kill_its_worker() {
        let scheduler = Scheduler::new(1); // one worker: a dead worker hangs everything
        let (tx, rx) = mpsc::channel();
        scheduler.spawn(|| panic!("job exploded"));
        for _ in 0..5 {
            let tx = tx.clone();
            scheduler.spawn(move || tx.send(()).unwrap());
        }
        for _ in 0..5 {
            rx.recv_timeout(Duration::from_secs(10))
                .expect("worker must survive the panicking job");
        }
    }

    #[test]
    fn drop_joins_workers_without_pending_work() {
        let scheduler = Scheduler::new(3);
        assert_eq!(scheduler.worker_count(), 3);
        drop(scheduler); // must not hang
    }
}
