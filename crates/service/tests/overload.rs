//! End-to-end suite for the event-driven connection layer: admission
//! control (global caps + per-connection in-flight cap), typed
//! `Overloaded` shedding, legacy-version shed semantics, the slow-loris
//! idle timeout, `Hello` limits, the zero-per-connection-threads
//! property, and byte-determinism of successful replies under load at
//! any worker count.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use arbodom_graph::weights::WeightModel;
use arbodom_obs::prom;
use arbodom_scenarios::{Family, Scale};
use arbodom_service::protocol::{
    decode_payload, read_frame, write_message, PROTOCOL_V2, PROTOCOL_V3,
};
use arbodom_service::{
    Client, GraphSource, JobSpec, Request, Response, Server, ServerConfig, ServiceError,
};

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        scale: Scale::Quick,
        cache_bytes: 32 << 20,
        ..ServerConfig::default()
    }
}

/// A generated-tree job: `n` controls how long a worker holds it.
fn tree_job(n: u32, seed: u64) -> JobSpec {
    JobSpec::new(GraphSource::Generator {
        family: Family::RandomTree,
        n,
        weights: WeightModel::Unit,
        seed,
    })
}

fn metric(server_addr: std::net::SocketAddr, name: &str) -> f64 {
    let mut client = Client::connect(server_addr).expect("metrics client");
    let text = client.metrics().expect("metrics scrape");
    let exp = prom::parse(&text).expect("scrape parses");
    exp.value(name).unwrap_or_else(|| panic!("missing {name}"))
}

#[test]
fn the_reactor_spawns_no_per_connection_threads() {
    let server = Server::bind("127.0.0.1:0", config(2)).unwrap();
    let baseline = server.threads_spawned();
    assert_eq!(baseline, 3, "one reactor + two workers");
    // Eight live connections, each doing real work: the spawn counter
    // must not move.
    let mut clients: Vec<Client> = (0..8)
        .map(|_| Client::connect(server.local_addr()).unwrap())
        .collect();
    for client in &mut clients {
        client.ping().unwrap();
        let replies = client.submit(&[tree_job(120, 1)]).unwrap();
        assert!(replies[0].as_ref().unwrap().valid);
    }
    assert_eq!(server.threads_spawned(), baseline);
    server.shutdown();
}

#[test]
fn pipelined_requests_past_the_per_conn_cap_shed_deterministically() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            per_conn_inflight: 2,
            ..config(1)
        },
    )
    .unwrap();
    // Ten pipelined single-job batches written in one burst: the frames
    // all arrive before the first (deliberately slow) job finishes, so
    // arrival-time classification sees the worst case. With a cap of 2,
    // exactly requests 0 and 1 are accepted and 2..=9 shed — and the
    // replies come back strictly in request order.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    for i in 0..10u64 {
        let batch = Request::Batch(vec![tree_job(20_000, i)]);
        write_message(&mut stream, PROTOCOL_V3, &batch).unwrap();
    }
    let mut accepted = 0;
    let mut shed = 0;
    for request_no in 0..10 {
        loop {
            let (_, payload) = read_frame(&mut stream).unwrap();
            match decode_payload::<Response>(&payload).unwrap() {
                Response::Job { outcome, .. } => {
                    assert!(outcome.is_ok());
                }
                Response::BatchDone { jobs } => {
                    assert_eq!(jobs, 1);
                    accepted += 1;
                    break;
                }
                Response::Overloaded { retry_after_ms, .. } => {
                    assert!(request_no >= 2, "request {request_no} shed before the cap");
                    assert!(retry_after_ms >= 10);
                    shed += 1;
                    break;
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
    }
    assert_eq!((accepted, shed), (2, 8));
    let addr = server.local_addr();
    assert_eq!(metric(addr, "arbodom_requests_shed_total"), 8.0);
    assert_eq!(metric(addr, "arbodom_requests_admitted_total"), 2.0);
    assert_eq!(metric(addr, "arbodom_job_errors_total"), 0.0);
    server.shutdown();
}

#[test]
fn pre_v3_sheds_reply_error_and_close() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            per_conn_inflight: 1,
            ..config(1)
        },
    )
    .unwrap();
    // A v2 connection cannot decode the Overloaded tag, so its shed is
    // the documented Error-then-close.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    for i in 0..3u64 {
        let batch = Request::Batch(vec![tree_job(20_000, i)]);
        write_message(&mut stream, PROTOCOL_V2, &batch).unwrap();
    }
    // Request 0 completes normally.
    let (_, payload) = read_frame(&mut stream).unwrap();
    assert!(matches!(
        decode_payload::<Response>(&payload).unwrap(),
        Response::Job { .. }
    ));
    let (_, payload) = read_frame(&mut stream).unwrap();
    assert!(matches!(
        decode_payload::<Response>(&payload).unwrap(),
        Response::BatchDone { jobs: 1 }
    ));
    // Request 1 was shed at arrival: Error frame, then EOF.
    let (_, payload) = read_frame(&mut stream).unwrap();
    match decode_payload::<Response>(&payload).unwrap() {
        Response::Error(msg) => assert!(msg.contains("overloaded"), "{msg:?}"),
        other => panic!("expected Error, got {other:?}"),
    }
    assert!(matches!(read_frame(&mut stream), Err(ServiceError::Closed)));
    server.shutdown();
}

#[test]
fn a_multi_client_flood_answers_every_request() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_pending_jobs: 2,
            per_conn_inflight: 1,
            ..config(2)
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let ok = Arc::new(AtomicU64::new(0));
    let overloaded = Arc::new(AtomicU64::new(0));
    let other_errors = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let (ok, overloaded, other_errors) = (
                Arc::clone(&ok),
                Arc::clone(&overloaded),
                Arc::clone(&other_errors),
            );
            std::thread::spawn(move || {
                // retries(0): observe raw sheds instead of masking them.
                let mut client = Client::builder().retries(0).connect(addr).unwrap();
                for round in 0..4u64 {
                    let batch = [
                        tree_job(400, t * 100 + round),
                        tree_job(400, t * 100 + round + 50),
                    ];
                    match client.submit(&batch) {
                        Ok(replies) => {
                            assert!(replies.iter().all(|r| r.is_ok()));
                            ok.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(ServiceError::Overloaded { retry_after_ms, .. }) => {
                            assert!(retry_after_ms >= 10);
                            overloaded.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(_) => {
                            other_errors.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    // Every request was answered: completed or typed-shed, nothing
    // dropped, no deadlock, no transport failures.
    assert_eq!(other_errors.load(Ordering::SeqCst), 0);
    assert_eq!(
        ok.load(Ordering::SeqCst) + overloaded.load(Ordering::SeqCst),
        24
    );
    assert_eq!(
        metric(addr, "arbodom_requests_shed_total"),
        overloaded.load(Ordering::SeqCst) as f64
    );
    assert_eq!(metric(addr, "arbodom_job_errors_total"), 0.0);
    server.shutdown();
}

#[test]
fn retrying_clients_ride_out_the_overload() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_pending_jobs: 2,
            per_conn_inflight: 1,
            ..config(2)
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::builder()
                    .retries(40)
                    .backoff(Duration::from_millis(2), Duration::from_millis(100))
                    .jitter_seed(t)
                    .connect(addr)
                    .unwrap();
                for round in 0..3u64 {
                    let replies = client
                        .submit(&[tree_job(400, t * 100 + round)])
                        .expect("retry budget outlasts the overload");
                    assert!(replies[0].is_ok());
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    server.shutdown();
}

#[test]
fn successful_replies_stay_byte_identical_across_worker_counts_under_load() {
    let probe_batch = vec![
        {
            let mut spec = JobSpec::new(GraphSource::Inline {
                n: 40,
                edges: (0..39).map(|i| (i, i + 1)).collect(),
                weights: None,
            });
            spec.return_members = true;
            spec
        },
        tree_job(300, 11),
        // A malformed job: its deterministic error string is part of the
        // byte stream under comparison.
        JobSpec::new(GraphSource::Inline {
            n: 2,
            edges: vec![(0, 7)],
            weights: None,
        }),
        tree_job(200, 12),
    ];
    let mut streams: Vec<Vec<Vec<u8>>> = Vec::new();
    for workers in [1, 2, 4] {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                max_pending_jobs: 6,
                per_conn_inflight: 1,
                ..config(workers)
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let flood: Vec<_> = (0..3)
            .map(|t| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut client = Client::builder()
                        .retries(3)
                        .backoff(Duration::from_millis(1), Duration::from_millis(20))
                        .jitter_seed(t)
                        .connect(addr)
                        .unwrap();
                    let mut seed = t * 1000;
                    while !stop.load(Ordering::SeqCst) {
                        seed += 1;
                        match client.submit(&[tree_job(350, seed)]) {
                            Ok(_) | Err(ServiceError::Overloaded { .. }) => {}
                            Err(e) => panic!("flood client failed: {e}"),
                        }
                    }
                })
            })
            .collect();
        let mut probe = Client::builder()
            .retries(60)
            .backoff(Duration::from_millis(2), Duration::from_millis(100))
            .connect(addr)
            .unwrap();
        let frames = probe.submit_raw(&probe_batch).expect("probe completes");
        stop.store(true, Ordering::SeqCst);
        for handle in flood {
            handle.join().unwrap();
        }
        server.shutdown();
        streams.push(frames);
    }
    assert_eq!(streams[0], streams[1], "1 vs 2 workers");
    assert_eq!(streams[0], streams[2], "1 vs 4 workers");
}

#[test]
fn slow_loris_connections_are_idle_closed() {
    // Regression test for the thread-per-connection server, which parked
    // a thread in a blocking read forever: a half-sent frame must now be
    // answered with a typed error and a close within the idle timeout.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(200)),
            ..config(1)
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Three bytes of a five-byte header, then silence.
    use std::io::Write;
    stream.write_all(&[PROTOCOL_V3, 0x10, 0x00]).unwrap();
    let (_, payload) = read_frame(&mut stream).expect("typed close reason, not a hang");
    match decode_payload::<Response>(&payload).unwrap() {
        Response::Error(msg) => assert!(msg.contains("idle timeout"), "{msg:?}"),
        other => panic!("expected Error, got {other:?}"),
    }
    assert!(matches!(read_frame(&mut stream), Err(ServiceError::Closed)));
    assert!(metric(addr, "arbodom_connections_idle_closed_total") >= 1.0);
    server.shutdown();
}

#[test]
fn hello_advertises_limits_and_is_gated_below_v3() {
    let cfg = ServerConfig {
        max_pending_jobs: 33,
        max_pending_bytes: 1 << 20,
        per_conn_inflight: 5,
        idle_timeout: Some(Duration::from_secs(7)),
        ..config(2)
    };
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let mut v3 = Client::connect(server.local_addr()).unwrap();
    assert_eq!(v3.version(), PROTOCOL_V3);
    let limits = v3.hello().unwrap();
    assert_eq!(limits.protocol_max, PROTOCOL_V3);
    assert_eq!(limits.workers, 2);
    assert_eq!(limits.max_pending_jobs, 33);
    assert_eq!(limits.max_pending_bytes, 1 << 20);
    assert_eq!(limits.per_conn_inflight, 5);
    assert_eq!(limits.idle_timeout_ms, 7_000);
    assert_eq!(limits, server.limits());
    // Hello on a v2 connection: typed gate, connection survives.
    let mut v2 = Client::connect_with_version(server.local_addr(), PROTOCOL_V2).unwrap();
    match v2.hello() {
        Err(ServiceError::UnsupportedVersion { got, min, max }) => {
            assert_eq!((got, min, max), (PROTOCOL_V2, PROTOCOL_V3, PROTOCOL_V3));
        }
        other => panic!("expected version gate, got {other:?}"),
    }
    v2.ping().expect("gated connection stays usable");
    server.shutdown();
}
