//! Property suite for the reactor's incremental frame reassembly: a
//! stream of well-formed frames must decode identically under **every**
//! TCP segmentation — byte-by-byte trickles, jumbo reads spanning many
//! frames, and arbitrary cuts in between. The reactor never controls
//! how the kernel chunks a stream, so [`FrameAssembler`] must not care.

use arbodom_service::protocol::{encode_payload, write_frame, PROTOCOL_MAX};
use arbodom_service::{FrameAssembler, GraphSource, JobSpec, Request, ServiceError};
use proptest::prelude::*;

/// SplitMix64: one seed fans out into a structured stream + cut plan.
struct Gen(u64);

impl Gen {
    fn u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.u64()) * u128::from(bound)) >> 64) as u64
    }

    fn request(&mut self) -> Request {
        match self.below(4) {
            0 => Request::Ping,
            1 => Request::Stats,
            2 => Request::Hello,
            _ => {
                let jobs = (0..self.below(4))
                    .map(|_| {
                        JobSpec::new(GraphSource::Inline {
                            n: self.below(64) as u32,
                            edges: (0..self.below(16))
                                .map(|_| (self.u64() as u32, self.u64() as u32))
                                .collect(),
                            weights: None,
                        })
                    })
                    .collect();
                Request::Batch(jobs)
            }
        }
    }
}

/// The wire stream for `messages`, plus the expected reassembly.
fn stream_for(gen: &mut Gen) -> (Vec<u8>, Vec<(u8, Vec<u8>)>) {
    let count = 1 + gen.below(8) as usize;
    let mut stream = Vec::new();
    let mut expected = Vec::new();
    for _ in 0..count {
        // Mixed version bytes on purpose: reassembly is version-agnostic;
        // the connection layer judges the byte, the framing just carries it.
        let version = 1 + gen.below(u64::from(PROTOCOL_MAX)) as u8;
        let payload = encode_payload(&gen.request());
        write_frame(&mut stream, version, &payload).expect("write to vec");
        expected.push((version, payload));
    }
    (stream, expected)
}

/// Feeds `stream` to an assembler in chunks chosen by `gen`, harvesting
/// complete frames after every push.
fn reassemble(stream: &[u8], gen: &mut Gen, max_chunk: u64) -> Vec<(u8, Vec<u8>)> {
    let mut assembler = FrameAssembler::new();
    let mut got = Vec::new();
    let mut offset = 0;
    while offset < stream.len() {
        let take = (1 + gen.below(max_chunk) as usize).min(stream.len() - offset);
        assembler.push(&stream[offset..offset + take]);
        offset += take;
        while let Some(frame) = assembler.next_frame().expect("well-formed stream") {
            got.push(frame);
        }
    }
    assert_eq!(assembler.buffered(), 0, "no bytes may be left behind");
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_segmentation_reassembles_the_same_frames(seed: u64) {
        let mut gen = Gen(seed);
        let (stream, expected) = stream_for(&mut gen);
        // Byte-by-byte, small random cuts, and jumbo chunks must all
        // yield the identical frame sequence.
        for max_chunk in [1, 7, 4096] {
            let got = reassemble(&stream, &mut gen, max_chunk);
            prop_assert_eq!(&got, &expected, "max_chunk={}", max_chunk);
        }
    }

    #[test]
    fn reassembly_matches_one_shot_delivery(seed: u64) {
        let mut gen = Gen(seed);
        let (stream, expected) = stream_for(&mut gen);
        let mut assembler = FrameAssembler::new();
        assembler.push(&stream);
        let mut got = Vec::new();
        while let Some(frame) = assembler.next_frame().expect("well-formed stream") {
            got.push(frame);
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn hostile_headers_poison_before_the_payload_arrives(seed: u64) {
        let mut gen = Gen(seed);
        // Valid frames first, then a header declaring an absurd length:
        // the error must fire from the header alone.
        let (stream, expected) = stream_for(&mut gen);
        let mut assembler = FrameAssembler::new();
        assembler.push(&stream);
        let mut got = 0;
        while assembler.next_frame().expect("valid prefix").is_some() {
            got += 1;
        }
        prop_assert_eq!(got, expected.len());
        let declared = (64 << 20) + 1 + gen.below(1 << 30) as u32;
        let mut header = vec![PROTOCOL_MAX];
        header.extend_from_slice(&declared.to_le_bytes());
        assembler.push(&header);
        prop_assert!(matches!(
            assembler.next_frame(),
            Err(ServiceError::FrameTooLarge(len)) if len == u64::from(declared)
        ));
    }
}
