//! Property suite for the `arbodomd` wire protocol: arbitrary job specs,
//! requests, and responses must satisfy the full [`Wire`] conformance
//! contract (round-trip, exact consumption, truncation rejection), and
//! corrupted frames must be rejected.

use arbodom_congest::assert_wire_conformance;
use arbodom_graph::weights::WeightModel;
use arbodom_scenarios::quality::RefKind;
use arbodom_scenarios::{Algorithm, Family};
use arbodom_service::protocol::{
    decode_payload, encode_payload, read_frame, write_frame, PROTOCOL_MAX,
};
use arbodom_service::{
    CacheStats, DeltaSpec, GraphSource, JobResult, JobSpec, RepairStats, Request, Response,
    ServerLimits, ServiceError, SessionPolicy, SessionUpdate,
};
use proptest::prelude::*;

/// SplitMix64 over a per-case seed: one u64 from the harness fans out
/// into a whole structured value.
struct Gen(u64);

impl Gen {
    fn u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.u64()) * u128::from(bound)) >> 64) as u64
    }

    fn usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// A finite, sign-balanced f64 (NaN would break `PartialEq`-based
    /// round-trip checks; the protocol itself ships raw bits).
    fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 / (1u64 << 53) as f64 * 2e6 - 1e6
    }

    fn string(&mut self) -> String {
        let len = self.usize(12);
        (0..len)
            .map(|_| {
                // Mixed ASCII and multi-byte code points.
                const CHARS: &[char] = &['a', 'z', '0', '-', '_', 'α', 'Δ', '⊕', ' '];
                CHARS[self.usize(CHARS.len())]
            })
            .collect()
    }

    fn weight_model(&mut self) -> WeightModel {
        match self.below(5) {
            0 => WeightModel::Unit,
            1 => {
                let lo = 1 + self.below(100);
                WeightModel::Uniform {
                    lo,
                    hi: lo + self.below(1000),
                }
            }
            2 => WeightModel::Exponential {
                max_exp: self.below(30) as u32,
            },
            3 => WeightModel::DegreeCorrelated,
            _ => WeightModel::InverseDegree,
        }
    }

    fn family(&mut self) -> Family {
        match self.below(10) {
            0 => Family::ForestUnion {
                alpha: 1 + self.usize(8),
                keep: self.f64().abs() % 1.0,
            },
            1 => Family::PrefAttach {
                m_per_node: 1 + self.usize(5),
            },
            2 => Family::PlantedDs {
                k_per_mille: 1 + self.usize(200),
                extra_per_node: self.usize(4),
            },
            3 => Family::Grid2d { torus: self.bool() },
            4 => Family::Gnp {
                avg_degree: self.f64().abs() % 16.0,
            },
            5 => Family::RandomTree,
            6 => Family::RandomPlanar {
                diag_p: self.f64().abs() % 1.0,
            },
            7 => Family::KTree {
                k: 1 + self.usize(6),
            },
            8 => Family::PowerLawCapped {
                exponent: 1.5 + self.f64().abs() % 2.0,
                cap: 1 + self.usize(8),
            },
            _ => Family::UnitDisk {
                avg_degree: self.f64().abs() % 12.0,
            },
        }
    }

    fn algorithm(&mut self) -> Algorithm {
        match self.below(4) {
            0 => Algorithm::Weighted { eps: self.f64() },
            1 => Algorithm::UnknownDelta { eps: self.f64() },
            2 => Algorithm::Randomized {
                t: 1 + self.usize(8),
            },
            _ => Algorithm::General {
                k: 1 + self.usize(8),
            },
        }
    }

    fn graph_source(&mut self) -> GraphSource {
        match self.below(4) {
            0 => {
                let n = self.below(50) as u32;
                let edges = (0..self.usize(20))
                    .map(|_| (self.below(1 << 20) as u32, self.below(1 << 20) as u32))
                    .collect();
                let weights = self
                    .bool()
                    .then(|| (0..self.usize(10)).map(|_| self.u64()).collect());
                GraphSource::Inline { n, edges, weights }
            }
            1 => GraphSource::Generator {
                family: self.family(),
                n: self.below(1 << 24) as u32,
                weights: self.weight_model(),
                seed: self.u64(),
            },
            2 => GraphSource::ScenarioCell {
                name: self.string(),
                size_idx: self.below(8) as u32,
                weight_idx: self.below(8) as u32,
                loss_idx: self.below(8) as u32,
                seed_idx: self.u64(),
            },
            _ => GraphSource::Session { id: self.u64() },
        }
    }

    fn delta_spec(&mut self) -> DeltaSpec {
        let edges = |g: &mut Gen| {
            (0..g.usize(8))
                .map(|_| (g.below(1 << 20) as u32, g.below(1 << 20) as u32))
                .collect()
        };
        DeltaSpec {
            inserts: edges(self),
            deletes: edges(self),
        }
    }

    fn session_policy(&mut self) -> SessionPolicy {
        if self.bool() {
            SessionPolicy::Repair
        } else {
            SessionPolicy::Resolve
        }
    }

    fn repair_stats(&mut self) -> RepairStats {
        RepairStats {
            repaired: self.bool(),
            added: self.u64(),
            removed: self.u64(),
            undominated_before: self.u64(),
            drift_estimate: self.f64(),
            batches_since_solve: self.u64(),
            chain: self.u64(),
        }
    }

    fn session_update(&mut self) -> SessionUpdate {
        SessionUpdate {
            result: self.job_result(),
            repair: self.repair_stats(),
        }
    }

    fn job_spec(&mut self) -> JobSpec {
        JobSpec {
            source: self.graph_source(),
            algorithm: self.bool().then(|| self.algorithm()),
            seed: self.u64(),
            return_members: self.bool(),
        }
    }

    fn job_result(&mut self) -> JobResult {
        JobResult {
            n: self.u64(),
            m: self.u64(),
            max_degree: self.u64(),
            alpha: self.u64(),
            graph_digest: self.u64(),
            ds_size: self.u64(),
            ds_weight: self.u64(),
            valid: self.bool(),
            undominated: self.u64(),
            reference: [RefKind::Exact, RefKind::Planted, RefKind::PackingLb][self.usize(3)],
            opt_estimate: self.f64(),
            ratio: self.f64(),
            guarantee: self.f64(),
            within_guarantee: self.bool(),
            flagged: self.bool(),
            rounds: self.u64(),
            round_budget: self.u64(),
            messages: self.u64(),
            total_bits: self.u64(),
            max_message_bits: self.u64(),
            budget_violations: self.u64(),
            dropped_messages: self.u64(),
            members: self
                .bool()
                .then(|| (0..self.usize(16)).map(|_| self.u64() as u32).collect()),
        }
    }

    fn request(&mut self) -> Request {
        match self.below(10) {
            0 => Request::Ping,
            1 => Request::Batch((0..self.usize(4)).map(|_| self.job_spec()).collect()),
            2 => Request::Stats,
            3 => Request::Shutdown,
            4 => Request::Open(self.job_spec()),
            5 => Request::Mutate {
                session: self.u64(),
                delta: self.delta_spec(),
                policy: self.session_policy(),
            },
            6 => Request::Resolve {
                session: self.u64(),
            },
            7 => Request::Release {
                session: self.u64(),
            },
            8 => Request::Metrics,
            _ => Request::Hello,
        }
    }

    fn server_limits(&mut self) -> ServerLimits {
        ServerLimits {
            protocol_min: self.u64() as u8,
            protocol_max: self.u64() as u8,
            workers: self.u64(),
            max_pending_jobs: self.u64(),
            max_pending_bytes: self.u64(),
            per_conn_inflight: self.u64(),
            idle_timeout_ms: self.u64(),
            max_frame_len: self.u64(),
            max_batch_jobs: self.u64(),
        }
    }

    fn response(&mut self) -> Response {
        match self.below(13) {
            0 => Response::Pong,
            1 => Response::Job {
                index: self.below(1 << 16) as u32,
                outcome: if self.bool() {
                    Ok(self.job_result())
                } else {
                    Err(self.string())
                },
            },
            2 => Response::BatchDone {
                jobs: self.below(1 << 16) as u32,
            },
            3 => Response::Stats(CacheStats {
                entries: self.u64(),
                capacity: self.u64(),
                bytes: self.u64(),
                hits: self.u64(),
                misses: self.u64(),
                evictions: self.u64(),
                sessions: self.u64(),
                session_bytes: self.u64(),
                session_evictions: self.u64(),
            }),
            4 => Response::ShuttingDown,
            5 => Response::Error(self.string()),
            6 => Response::Session {
                id: self.u64(),
                outcome: if self.bool() {
                    Ok(self.job_result())
                } else {
                    Err(self.string())
                },
            },
            7 => Response::Mutated {
                id: self.u64(),
                outcome: if self.bool() {
                    Ok(self.session_update())
                } else {
                    Err(self.string())
                },
            },
            8 => Response::Released {
                id: self.u64(),
                existed: self.bool(),
            },
            9 => Response::MetricsReport(self.string()),
            10 => Response::UnsupportedVersion {
                got: self.u64() as u8,
                min: self.u64() as u8,
                max: self.u64() as u8,
            },
            11 => Response::Overloaded {
                retry_after_ms: self.u64(),
                queue_depth: self.u64(),
            },
            _ => Response::Limits(self.server_limits()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn job_specs_conform(seed: u64) {
        assert_wire_conformance(&Gen(seed).job_spec());
    }

    #[test]
    fn requests_conform(seed: u64) {
        assert_wire_conformance(&Gen(seed).request());
    }

    #[test]
    fn responses_conform(seed: u64) {
        assert_wire_conformance(&Gen(seed).response());
    }

    #[test]
    fn bad_leading_tags_are_rejected(seed: u64) {
        // Overwrite the leading tag byte with every invalid value: the
        // decoder must error, never mis-route.
        let mut payload = encode_payload(&Gen(seed).request());
        for tag in 10..=u8::MAX {
            payload[0] = tag;
            prop_assert!(decode_payload::<Request>(&payload).is_err());
        }
        let mut payload = encode_payload(&Gen(seed).response());
        for tag in 13..=u8::MAX {
            payload[0] = tag;
            prop_assert!(decode_payload::<Response>(&payload).is_err());
        }
    }

    #[test]
    fn trailing_garbage_is_rejected(seed: u64) {
        let mut gen = Gen(seed);
        let mut payload = encode_payload(&gen.request());
        payload.push(gen.u64() as u8);
        prop_assert!(decode_payload::<Request>(&payload).is_err());
    }

    #[test]
    fn frames_roundtrip_any_version_byte(seed: u64) {
        // Framing is version-agnostic by design: the *connection* layer
        // decides what to do with the byte, so read_frame must faithfully
        // return whatever version the writer stamped — including ones no
        // server speaks.
        let mut gen = Gen(seed);
        let version = gen.u64() as u8;
        let payload = encode_payload(&gen.request());
        let mut buf = Vec::new();
        write_frame(&mut buf, version, &payload).unwrap();
        let (got_version, got_payload) = read_frame(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(got_version, version);
        prop_assert_eq!(got_payload, payload);
    }

    #[test]
    fn truncated_frames_are_errors_at_every_cut(seed: u64) {
        // Cut a well-formed frame at every byte boundary: an empty read
        // is a clean close, everything else must error — never hang,
        // never yield a phantom message.
        let mut gen = Gen(seed);
        let payload = encode_payload(&gen.request());
        let mut buf = Vec::new();
        write_frame(&mut buf, PROTOCOL_MAX, &payload).unwrap();
        for keep in 0..buf.len() {
            let err = read_frame(&mut &buf[..keep]).unwrap_err();
            if keep == 0 {
                prop_assert!(matches!(err, ServiceError::Closed));
            } else {
                prop_assert!(matches!(err, ServiceError::Io(_)));
            }
        }
    }
}

#[test]
fn empty_payload_is_rejected() {
    assert!(decode_payload::<Request>(&[]).is_err());
    assert!(decode_payload::<Response>(&[]).is_err());
}

#[test]
fn corrupt_interior_bool_is_rejected() {
    // JobSpec ends with ... algorithm-presence bool, seed varint, members
    // bool; smash the trailing bool to a non-0/1 byte.
    let spec = JobSpec::new(GraphSource::Inline {
        n: 3,
        edges: vec![(0, 1)],
        weights: None,
    });
    let mut payload = encode_payload(&spec);
    *payload.last_mut().unwrap() = 7;
    assert!(decode_payload::<JobSpec>(&payload).is_err());
}

#[test]
fn declared_lengths_beyond_the_buffer_are_rejected_without_allocation() {
    // A Batch claiming 2^40 jobs in a 3-byte payload must fail fast on
    // the sequence-length guard, not attempt a huge Vec.
    let payload = [1u8, 0xff, 0xff, 0xff, 0xff, 0x7f];
    assert!(decode_payload::<Request>(&payload).is_err());
}
