//! End-to-end daemon tests: boot `arbodomd` on an ephemeral port, submit
//! mixed batches, and check the serving layer's headline guarantees —
//! byte-identical response streams across resubmission, concurrent
//! clients, and 1/2/4 server worker threads; cache hits on repeats;
//! clean quality accounting; the v2 session protocol (open → mutate →
//! resolve → release) and version negotiation against v1 clients.

use arbodom_scenarios::{Algorithm, Family, Scale};
use arbodom_service::{
    Client, DeltaSpec, GraphSource, JobSpec, Response, Server, ServerConfig, ServiceError,
    SessionPolicy, PROTOCOL_V1,
};

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        sim_threads: 1,
        cache_bytes: 32 << 20,
        scale: Scale::Quick,
        ..ServerConfig::default()
    }
}

/// A batch exercising all three ingestion paths, an algorithm override,
/// a member-list request, and one deliberately malformed job (whose
/// error reply must be deterministic too).
fn mixed_batch() -> Vec<JobSpec> {
    let path = GraphSource::Inline {
        n: 40,
        edges: (0..39).map(|i| (i, i + 1)).collect(),
        weights: None,
    };
    let weighted_star = GraphSource::Inline {
        n: 12,
        edges: (1..12).map(|i| (0, i)).collect(),
        weights: Some((0..12).map(|i| 1 + (i % 5) as u64 * 7).collect()),
    };
    let forest = GraphSource::Generator {
        family: Family::ForestUnion {
            alpha: 2,
            keep: 1.0,
        },
        n: 150,
        weights: arbodom_graph::weights::WeightModel::Unit,
        seed: 5,
    };
    let tree = GraphSource::Generator {
        family: Family::RandomTree,
        n: 120,
        weights: arbodom_graph::weights::WeightModel::Uniform { lo: 1, hi: 30 },
        seed: 9,
    };
    let bad = GraphSource::Inline {
        n: 2,
        edges: vec![(0, 7)],
        weights: None,
    };
    vec![
        JobSpec {
            return_members: true,
            ..JobSpec::new(path)
        },
        JobSpec::new(weighted_star),
        JobSpec::new(forest),
        JobSpec {
            algorithm: Some(Algorithm::UnknownDelta { eps: 0.3 }),
            ..JobSpec::new(tree)
        },
        JobSpec::new(GraphSource::ScenarioCell {
            name: "trees-exact".into(),
            size_idx: 0,
            weight_idx: 0,
            loss_idx: 0,
            seed_idx: 0,
        }),
        JobSpec::new(GraphSource::ScenarioCell {
            name: "compare-planted".into(),
            size_idx: 0,
            weight_idx: 0,
            loss_idx: 0,
            seed_idx: 1,
        }),
        JobSpec::new(bad),
    ]
}

/// Decodes a raw frame stream and asserts it is well-formed: jobs in
/// order, exactly one failure (the malformed job, with a typed message),
/// everything else valid and quality-unflagged.
fn assert_batch_is_healthy(frames: &[Vec<u8>], jobs: usize) {
    assert_eq!(frames.len(), jobs + 1, "one frame per job plus the trailer");
    for (i, payload) in frames.iter().enumerate() {
        match arbodom_service::protocol::decode_payload::<Response>(payload).unwrap() {
            Response::Job { index, outcome } => {
                assert_eq!(index as usize, i, "jobs must arrive in submission order");
                if index as usize == jobs - 1 {
                    let err = outcome.expect_err("malformed job must fail");
                    assert!(err.contains("out of range"), "{err}");
                } else {
                    let result = outcome.expect("job succeeds");
                    assert!(result.valid, "job {index} produced an invalid set");
                    assert!(!result.flagged, "job {index} tripped quality accounting");
                }
            }
            Response::BatchDone { jobs: count } => {
                assert_eq!(i, jobs, "trailer must come last");
                assert_eq!(count as usize, jobs);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
}

#[test]
fn concurrent_clients_get_identical_byte_streams_and_repeats_hit_the_cache() {
    let server = Server::bind("127.0.0.1:0", config(4)).unwrap();
    let addr = server.local_addr();
    let jobs = mixed_batch();

    // Two client threads submit the same batch concurrently.
    let streams: Vec<Vec<Vec<u8>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let jobs = jobs.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client.submit_raw(&jobs).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        streams[0], streams[1],
        "concurrent clients must receive byte-identical response streams"
    );
    assert_batch_is_healthy(&streams[0], jobs.len());

    // A third, sequential submission: byte-identical again, and now every
    // source is warm — the cache must answer it.
    let mut client = Client::connect(addr).unwrap();
    let before = client.stats().unwrap();
    let repeat = client.submit_raw(&jobs).unwrap();
    assert_eq!(streams[0], repeat, "cache hits must not change responses");
    let after = client.stats().unwrap();
    // Every job that builds a graph (all but the malformed one) must hit.
    let buildable = (jobs.len() - 1) as u64;
    assert!(
        after.hits >= before.hits + buildable,
        "expected ≥ {buildable} new cache hits, stats {before:?} → {after:?}"
    );
    assert!(after.entries >= 1);
    assert!(
        after.bytes > 0 && after.bytes <= after.capacity,
        "byte accounting must be live and within budget, stats {after:?}"
    );
    server.shutdown();
}

#[test]
fn responses_are_identical_across_1_2_4_worker_threads() {
    let jobs = mixed_batch();
    let mut streams = Vec::new();
    for workers in [1, 2, 4] {
        let server = Server::bind("127.0.0.1:0", config(workers)).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let first = client.submit_raw(&jobs).unwrap();
        let second = client.submit_raw(&jobs).unwrap();
        assert_eq!(
            first, second,
            "{workers} workers: resubmission must be byte-identical"
        );
        let stats = client.stats().unwrap();
        assert!(
            stats.hits > 0,
            "{workers} workers: second submission must hit the cache"
        );
        streams.push(first);
        server.shutdown();
    }
    assert_eq!(streams[0], streams[1], "1 vs 2 workers");
    assert_eq!(streams[1], streams[2], "2 vs 4 workers");
    assert_batch_is_healthy(&streams[0], jobs.len());
}

#[test]
fn control_requests_and_client_driven_shutdown() {
    let server = Server::bind("127.0.0.1:0", config(2)).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.capacity, 32 << 20);
    assert_eq!(stats.bytes, 0, "nothing cached yet");
    client.shutdown_server().unwrap();
    // The daemon stops accepting: wait() must return promptly.
    server.wait();
    // New connections are refused once the listener is gone (allow a few
    // retries for the OS to tear the socket down).
    for _ in 0..50 {
        if Client::connect(addr).is_err() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    panic!("daemon kept accepting after shutdown");
}

#[test]
fn scenario_cells_respect_the_server_scale() {
    // The same cell address resolves to different instances at quick vs
    // full scale; the daemon's scale knob decides.
    let quick = Server::bind("127.0.0.1:0", config(2)).unwrap();
    let spec = JobSpec::new(GraphSource::ScenarioCell {
        name: "trees-exact".into(),
        size_idx: 0,
        weight_idx: 0,
        loss_idx: 0,
        seed_idx: 0,
    });
    let mut client = Client::connect(quick.local_addr()).unwrap();
    let reply = client.submit(std::slice::from_ref(&spec)).unwrap();
    let result = reply[0].as_ref().unwrap();
    assert_eq!(result.n, 400, "trees-exact quick size is 400");
    // Out-of-range cell indices are job errors, not daemon crashes.
    let bad = JobSpec::new(GraphSource::ScenarioCell {
        name: "trees-exact".into(),
        size_idx: 0,
        weight_idx: 9,
        loss_idx: 0,
        seed_idx: 0,
    });
    let reply = client.submit(std::slice::from_ref(&bad)).unwrap();
    let err = reply[0].as_ref().unwrap_err();
    assert!(err.contains("weight_idx"), "{err}");
    quick.shutdown();
}

fn path_spec(n: u32) -> JobSpec {
    JobSpec::new(GraphSource::Inline {
        n,
        edges: (0..n - 1).map(|i| (i, i + 1)).collect(),
        weights: None,
    })
}

#[test]
fn session_lifecycle_open_mutate_resolve_release() {
    let server = Server::bind("127.0.0.1:0", config(2)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let (id, opened) = client.open(&path_spec(40)).unwrap();
    assert!(id >= 1, "session ids start at 1");
    assert!(opened.valid && !opened.flagged);
    assert!(opened.rounds > 0, "opening runs a real distributed solve");

    // A small churn batch under the repair policy: the set stays valid
    // with zero simulated rounds, and the drift accounting ticks.
    let delta = DeltaSpec {
        inserts: vec![(0, 39)],
        deletes: vec![(10, 11)],
    };
    let update = client.mutate(id, &delta, SessionPolicy::Repair).unwrap();
    assert!(update.result.valid);
    assert!(
        update.repair.repaired,
        "one small batch must not trip drift"
    );
    assert_eq!(update.result.rounds, 0, "local repair simulates nothing");
    assert_eq!(update.repair.batches_since_solve, 1);
    assert_ne!(update.result.graph_digest, opened.graph_digest);
    assert_eq!(update.result.m, opened.m, "one insert + one delete");

    // A regular batch job addressing the session sees the mutated graph.
    let snap = client
        .submit(&[JobSpec::new(GraphSource::Session { id })])
        .unwrap();
    let snap = snap[0].as_ref().unwrap();
    assert_eq!(snap.graph_digest, update.result.graph_digest);

    // The resolve policy certifies the batch with a full re-solve:
    // simulation rounds are spent and the drift anchor resets.
    let delta2 = DeltaSpec {
        inserts: vec![(5, 20)],
        deletes: vec![],
    };
    let update2 = client.mutate(id, &delta2, SessionPolicy::Resolve).unwrap();
    assert!(update2.result.valid);
    assert!(!update2.repair.repaired);
    assert!(update2.result.rounds > 0, "resolve runs the real algorithm");
    assert_eq!(update2.repair.batches_since_solve, 0);

    // An explicit Resolve request re-anchors too.
    let resolved = client.resolve_session(id).unwrap();
    assert!(resolved.result.valid);
    assert!(!resolved.repair.repaired);

    // A conflicting delta is a job-level error; the session survives and
    // the connection stays usable.
    let conflict = DeltaSpec {
        inserts: vec![(5, 20)],
        deletes: vec![],
    };
    let err = client
        .mutate(id, &conflict, SessionPolicy::Repair)
        .unwrap_err();
    assert!(matches!(err, ServiceError::Remote(_)), "{err}");
    client.ping().unwrap();
    client.resolve_session(id).unwrap();

    // Release is idempotent; a released session is gone for every verb.
    assert!(client.release(id).unwrap());
    assert!(!client.release(id).unwrap());
    let err = client
        .mutate(id, &delta, SessionPolicy::Repair)
        .unwrap_err();
    match err {
        ServiceError::Remote(msg) => assert!(msg.contains("unknown session"), "{msg}"),
        other => panic!("expected Remote, got {other}"),
    }
    let snap = client
        .submit(&[JobSpec::new(GraphSource::Session { id })])
        .unwrap();
    let msg = snap[0].as_ref().unwrap_err();
    assert!(msg.contains("unknown session"), "{msg}");
    server.shutdown();
}

#[test]
fn idle_sessions_expire_and_their_bytes_leave_the_daemon() {
    // Regression: before TTL eviction, every opened-but-never-released
    // session pinned its graph and flag vector for the daemon's lifetime.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            session_ttl: std::time::Duration::from_millis(80),
            ..config(2)
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let (id, _) = client.open(&path_spec(40)).unwrap();
    let (live, bytes, _) = {
        let s = client.stats().unwrap();
        (s.sessions, s.session_bytes, s.session_evictions)
    };
    assert_eq!(live, 1);
    assert!(bytes > 0, "an open session must report resident bytes");

    std::thread::sleep(std::time::Duration::from_millis(200));
    // Any table access sweeps; the stale session must be gone with a
    // typed "expired" reason — not the generic unknown-session error.
    let err = client
        .mutate(
            id,
            &DeltaSpec {
                inserts: vec![(0, 39)],
                deletes: vec![],
            },
            SessionPolicy::Repair,
        )
        .unwrap_err();
    match err {
        ServiceError::Remote(msg) => assert!(msg.contains("expired session"), "{msg}"),
        other => panic!("expected remote job error, got {other:?}"),
    }
    let snap = client
        .submit(&[JobSpec::new(GraphSource::Session { id })])
        .unwrap();
    let msg = snap[0].as_ref().unwrap_err();
    assert!(msg.contains("expired session"), "{msg}");

    let s = client.stats().unwrap();
    assert_eq!(s.sessions, 0, "expired session must leave the table");
    assert_eq!(s.session_bytes, 0, "its resident bytes must be reclaimed");
    assert!(s.session_evictions >= 1);
    server.shutdown();
}

#[test]
fn the_session_cap_displaces_the_least_recently_used_session() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            session_ttl: std::time::Duration::from_secs(3600),
            max_sessions: 1,
            ..config(2)
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let (first, _) = client.open(&path_spec(20)).unwrap();
    let (second, _) = client.open(&path_spec(30)).unwrap();
    // Opening the second displaced the first (cap is 1).
    let err = client.resolve_session(first).unwrap_err();
    match err {
        ServiceError::Remote(msg) => assert!(msg.contains("evicted session"), "{msg}"),
        other => panic!("expected remote job error, got {other:?}"),
    }
    // The survivor keeps working.
    let update = client
        .mutate(
            second,
            &DeltaSpec {
                inserts: vec![(0, 29)],
                deletes: vec![],
            },
            SessionPolicy::Repair,
        )
        .unwrap();
    assert_eq!(update.result.m, 30);
    let s = client.stats().unwrap();
    assert_eq!(s.sessions, 1);
    assert!(s.session_bytes > 0);
    assert!(s.session_evictions >= 1);
    server.shutdown();
}

#[test]
fn sessions_are_shared_across_connections() {
    let server = Server::bind("127.0.0.1:0", config(2)).unwrap();
    let addr = server.local_addr();
    let mut opener = Client::connect(addr).unwrap();
    let (id, opened) = opener.open(&path_spec(30)).unwrap();
    // A different connection mutates and releases the same session.
    let mut other = Client::connect(addr).unwrap();
    let update = other
        .mutate(
            id,
            &DeltaSpec {
                inserts: vec![(0, 29)],
                deletes: vec![],
            },
            SessionPolicy::Repair,
        )
        .unwrap();
    assert_eq!(update.result.m, opened.m + 1);
    assert!(other.release(id).unwrap());
    server.shutdown();
}

#[test]
fn v1_connections_negotiate_and_are_gated_from_the_session_protocol() {
    let server = Server::bind("127.0.0.1:0", config(2)).unwrap();
    let addr = server.local_addr();

    // A v1 client works for the whole v1 surface...
    let mut v1 = Client::connect_with_version(addr, PROTOCOL_V1).unwrap();
    v1.ping().unwrap();
    v1.stats().unwrap();
    let replies = v1.submit(&[path_spec(10)]).unwrap();
    assert!(replies[0].as_ref().unwrap().valid);

    // ...but session requests get a typed UnsupportedVersion naming the
    // required range, and the connection stays open.
    let err = v1.open(&path_spec(10)).unwrap_err();
    match err {
        ServiceError::UnsupportedVersion { got, min, max } => {
            assert_eq!(got, PROTOCOL_V1);
            assert!(min > PROTOCOL_V1 && max >= min);
        }
        other => panic!("expected UnsupportedVersion, got {other}"),
    }
    v1.ping().unwrap();
    // Batches addressing session snapshots are v2-gated too.
    let err = v1
        .submit(&[JobSpec::new(GraphSource::Session { id: 1 })])
        .unwrap_err();
    assert!(
        matches!(err, ServiceError::UnsupportedVersion { .. }),
        "{err}"
    );
    v1.ping().unwrap();

    // A version the server does not speak at all: typed rejection on the
    // first request, then the server hangs up.
    let mut future = Client::connect_with_version(addr, 9).unwrap();
    let err = future.ping().unwrap_err();
    match err {
        ServiceError::UnsupportedVersion { got, .. } => assert_eq!(got, 9),
        other => panic!("expected UnsupportedVersion, got {other}"),
    }
    assert!(future.ping().is_err(), "connection must be closed");
    server.shutdown();
}
