//! End-to-end daemon tests: boot `arbodomd` on an ephemeral port, submit
//! mixed batches, and check the serving layer's headline guarantees —
//! byte-identical response streams across resubmission, concurrent
//! clients, and 1/2/4 server worker threads; cache hits on repeats;
//! clean quality accounting.

use arbodom_scenarios::{Algorithm, Family, Scale};
use arbodom_service::{Client, GraphSource, JobSpec, Response, Server, ServerConfig};

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        sim_threads: 1,
        cache_capacity: 32,
        scale: Scale::Quick,
    }
}

/// A batch exercising all three ingestion paths, an algorithm override,
/// a member-list request, and one deliberately malformed job (whose
/// error reply must be deterministic too).
fn mixed_batch() -> Vec<JobSpec> {
    let path = GraphSource::Inline {
        n: 40,
        edges: (0..39).map(|i| (i, i + 1)).collect(),
        weights: None,
    };
    let weighted_star = GraphSource::Inline {
        n: 12,
        edges: (1..12).map(|i| (0, i)).collect(),
        weights: Some((0..12).map(|i| 1 + (i % 5) as u64 * 7).collect()),
    };
    let forest = GraphSource::Generator {
        family: Family::ForestUnion {
            alpha: 2,
            keep: 1.0,
        },
        n: 150,
        weights: arbodom_graph::weights::WeightModel::Unit,
        seed: 5,
    };
    let tree = GraphSource::Generator {
        family: Family::RandomTree,
        n: 120,
        weights: arbodom_graph::weights::WeightModel::Uniform { lo: 1, hi: 30 },
        seed: 9,
    };
    let bad = GraphSource::Inline {
        n: 2,
        edges: vec![(0, 7)],
        weights: None,
    };
    vec![
        JobSpec {
            return_members: true,
            ..JobSpec::new(path)
        },
        JobSpec::new(weighted_star),
        JobSpec::new(forest),
        JobSpec {
            algorithm: Some(Algorithm::UnknownDelta { eps: 0.3 }),
            ..JobSpec::new(tree)
        },
        JobSpec::new(GraphSource::ScenarioCell {
            name: "trees-exact".into(),
            size_idx: 0,
            weight_idx: 0,
            loss_idx: 0,
            seed_idx: 0,
        }),
        JobSpec::new(GraphSource::ScenarioCell {
            name: "compare-planted".into(),
            size_idx: 0,
            weight_idx: 0,
            loss_idx: 0,
            seed_idx: 1,
        }),
        JobSpec::new(bad),
    ]
}

/// Decodes a raw frame stream and asserts it is well-formed: jobs in
/// order, exactly one failure (the malformed job, with a typed message),
/// everything else valid and quality-unflagged.
fn assert_batch_is_healthy(frames: &[Vec<u8>], jobs: usize) {
    assert_eq!(frames.len(), jobs + 1, "one frame per job plus the trailer");
    for (i, payload) in frames.iter().enumerate() {
        match arbodom_service::protocol::decode_payload::<Response>(payload).unwrap() {
            Response::Job { index, outcome } => {
                assert_eq!(index as usize, i, "jobs must arrive in submission order");
                if index as usize == jobs - 1 {
                    let err = outcome.expect_err("malformed job must fail");
                    assert!(err.contains("out of range"), "{err}");
                } else {
                    let result = outcome.expect("job succeeds");
                    assert!(result.valid, "job {index} produced an invalid set");
                    assert!(!result.flagged, "job {index} tripped quality accounting");
                }
            }
            Response::BatchDone { jobs: count } => {
                assert_eq!(i, jobs, "trailer must come last");
                assert_eq!(count as usize, jobs);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
}

#[test]
fn concurrent_clients_get_identical_byte_streams_and_repeats_hit_the_cache() {
    let server = Server::bind("127.0.0.1:0", config(4)).unwrap();
    let addr = server.local_addr();
    let jobs = mixed_batch();

    // Two client threads submit the same batch concurrently.
    let streams: Vec<Vec<Vec<u8>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let jobs = jobs.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client.submit_raw(&jobs).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        streams[0], streams[1],
        "concurrent clients must receive byte-identical response streams"
    );
    assert_batch_is_healthy(&streams[0], jobs.len());

    // A third, sequential submission: byte-identical again, and now every
    // source is warm — the cache must answer it.
    let mut client = Client::connect(addr).unwrap();
    let before = client.stats().unwrap();
    let repeat = client.submit_raw(&jobs).unwrap();
    assert_eq!(streams[0], repeat, "cache hits must not change responses");
    let after = client.stats().unwrap();
    // Every job that builds a graph (all but the malformed one) must hit.
    let buildable = (jobs.len() - 1) as u64;
    assert!(
        after.hits >= before.hits + buildable,
        "expected ≥ {buildable} new cache hits, stats {before:?} → {after:?}"
    );
    assert!(after.entries >= 1);
    server.shutdown();
}

#[test]
fn responses_are_identical_across_1_2_4_worker_threads() {
    let jobs = mixed_batch();
    let mut streams = Vec::new();
    for workers in [1, 2, 4] {
        let server = Server::bind("127.0.0.1:0", config(workers)).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let first = client.submit_raw(&jobs).unwrap();
        let second = client.submit_raw(&jobs).unwrap();
        assert_eq!(
            first, second,
            "{workers} workers: resubmission must be byte-identical"
        );
        let stats = client.stats().unwrap();
        assert!(
            stats.hits > 0,
            "{workers} workers: second submission must hit the cache"
        );
        streams.push(first);
        server.shutdown();
    }
    assert_eq!(streams[0], streams[1], "1 vs 2 workers");
    assert_eq!(streams[1], streams[2], "2 vs 4 workers");
    assert_batch_is_healthy(&streams[0], jobs.len());
}

#[test]
fn control_requests_and_client_driven_shutdown() {
    let server = Server::bind("127.0.0.1:0", config(2)).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.capacity, 32);
    client.shutdown_server().unwrap();
    // The daemon stops accepting: wait() must return promptly.
    server.wait();
    // New connections are refused once the listener is gone (allow a few
    // retries for the OS to tear the socket down).
    for _ in 0..50 {
        if Client::connect(addr).is_err() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    panic!("daemon kept accepting after shutdown");
}

#[test]
fn scenario_cells_respect_the_server_scale() {
    // The same cell address resolves to different instances at quick vs
    // full scale; the daemon's scale knob decides.
    let quick = Server::bind("127.0.0.1:0", config(2)).unwrap();
    let spec = JobSpec::new(GraphSource::ScenarioCell {
        name: "trees-exact".into(),
        size_idx: 0,
        weight_idx: 0,
        loss_idx: 0,
        seed_idx: 0,
    });
    let mut client = Client::connect(quick.local_addr()).unwrap();
    let reply = client.submit(std::slice::from_ref(&spec)).unwrap();
    let result = reply[0].as_ref().unwrap();
    assert_eq!(result.n, 400, "trees-exact quick size is 400");
    // Out-of-range cell indices are job errors, not daemon crashes.
    let bad = JobSpec::new(GraphSource::ScenarioCell {
        name: "trees-exact".into(),
        size_idx: 0,
        weight_idx: 9,
        loss_idx: 0,
        seed_idx: 0,
    });
    let reply = client.submit(std::slice::from_ref(&bad)).unwrap();
    let err = reply[0].as_ref().unwrap_err();
    assert!(err.contains("weight_idx"), "{err}");
    quick.shutdown();
}
