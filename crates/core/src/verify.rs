//! Verification: dominating-set checking and dual (packing) certificates.
//!
//! Lemma 2.1 of the paper: if `{x_v}` satisfies `Σ_{v ∈ N⁺(u)} x_v ≤ w_u`
//! for every node `u`, then `Σ_v x_v ≤ OPT`. The primal-dual algorithms
//! emit exactly such a packing, so every run carries a machine-checkable
//! lower bound on the optimum — the experiments' measured ratios are
//! certified, not estimated.

use arbodom_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Whether `in_ds` flags a dominating set of `g`.
pub fn is_dominating_set(g: &Graph, in_ds: &[bool]) -> bool {
    assert_eq!(in_ds.len(), g.n(), "flag vector must cover all nodes");
    g.nodes()
        .all(|v| g.closed_neighbors(v).any(|u| in_ds[u.index()]))
}

/// The nodes not dominated by `in_ds`, in id order.
pub fn undominated_nodes(g: &Graph, in_ds: &[bool]) -> Vec<NodeId> {
    assert_eq!(in_ds.len(), g.n(), "flag vector must cover all nodes");
    g.nodes()
        .filter(|&v| !g.closed_neighbors(v).any(|u| in_ds[u.index()]))
        .collect()
}

/// Marks `N⁺[S]` for the given membership flags.
pub fn dominated_flags(g: &Graph, in_ds: &[bool]) -> Vec<bool> {
    let mut dom = vec![false; g.n()];
    for v in g.nodes() {
        if in_ds[v.index()] {
            dom[v.index()] = true;
            for &u in g.neighbors(v) {
                dom[u.index()] = true;
            }
        }
    }
    dom
}

/// A packing `{x_v}` in the sense of Lemma 2.1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PackingCertificate {
    x: Vec<f64>,
}

impl PackingCertificate {
    /// Wraps raw packing values (indexed by node id).
    pub fn new(x: Vec<f64>) -> Self {
        PackingCertificate { x }
    }

    /// The packing values.
    pub fn values(&self) -> &[f64] {
        &self.x
    }

    /// `Σ_v x_v`, a lower bound on OPT when the packing is feasible.
    pub fn lower_bound(&self) -> f64 {
        self.x.iter().sum()
    }

    /// The largest relative constraint violation
    /// `max_u (Σ_{v∈N⁺(u)} x_v − w_u) / w_u` (0 if none).
    ///
    /// The algorithms maintain feasibility exactly in real arithmetic; in
    /// `f64` a violation up to a few ulps can appear, which is why
    /// [`PackingCertificate::is_feasible`] takes a tolerance.
    pub fn max_violation(&self, g: &Graph) -> f64 {
        assert_eq!(self.x.len(), g.n(), "packing must cover all nodes");
        g.nodes()
            .map(|u| {
                let xu: f64 = g.closed_neighbors(u).map(|v| self.x[v.index()]).sum();
                let wu = g.weight(u) as f64;
                (xu - wu) / wu
            })
            .fold(0.0f64, f64::max)
    }

    /// Whether every packing constraint holds up to relative tolerance
    /// `tol` (use `1e-9` for the f64 algorithms).
    pub fn is_feasible(&self, g: &Graph, tol: f64) -> bool {
        self.max_violation(g) <= tol
    }

    /// Certified ratio of a solution of total weight `w` against this
    /// certificate: an upper bound on the true approximation ratio.
    pub fn ratio_of(&self, weight: u64) -> f64 {
        weight as f64 / self.lower_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbodom_graph::generators;

    #[test]
    fn dominating_set_detection() {
        let g = generators::path(5); // 0-1-2-3-4
        assert!(is_dominating_set(&g, &[false, true, false, true, false]));
        assert!(!is_dominating_set(&g, &[true, false, false, false, true]));
        assert_eq!(
            undominated_nodes(&g, &[true, false, false, false, true]),
            vec![NodeId::new(2)]
        );
    }

    #[test]
    fn empty_set_dominates_empty_graph() {
        let g = arbodom_graph::Graph::from_edges(0, []).unwrap();
        assert!(is_dominating_set(&g, &[]));
    }

    #[test]
    fn isolated_node_needs_itself() {
        let g = arbodom_graph::Graph::from_edges(3, [(0, 1)]).unwrap();
        assert!(!is_dominating_set(&g, &[true, false, false]));
        assert!(is_dominating_set(&g, &[true, false, true]));
    }

    #[test]
    fn dominated_flags_match_undominated() {
        let g = generators::star(6);
        let in_ds = [false, true, false, false, false, false];
        let dom = dominated_flags(&g, &in_ds);
        // leaf 1 dominates itself and the hub only
        assert_eq!(dom, vec![true, true, false, false, false, false]);
        assert_eq!(undominated_nodes(&g, &in_ds).len(), 4);
    }

    #[test]
    fn packing_feasibility() {
        let g = generators::path(3).with_weights(vec![2, 2, 2]).unwrap();
        // X_1 = x_0 + x_1 + x_2 must be ≤ 2.
        let ok = PackingCertificate::new(vec![0.5, 0.5, 0.5]);
        assert!(ok.is_feasible(&g, 0.0));
        assert!((ok.lower_bound() - 1.5).abs() < 1e-12);
        let bad = PackingCertificate::new(vec![1.0, 1.0, 1.0]);
        assert!(!bad.is_feasible(&g, 1e-9));
        assert!(bad.max_violation(&g) > 0.49);
    }

    #[test]
    fn ratio_of_divides() {
        let cert = PackingCertificate::new(vec![2.0, 2.0]);
        assert!((cert.ratio_of(8) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn packing_lower_bound_at_most_opt_on_star() {
        // For a star, OPT = 1 (the hub). Any feasible packing sums to ≤ 1
        // because every node is in N⁺(hub).
        let g = generators::star(8);
        let uniform = 1.0 / 8.0;
        let cert = PackingCertificate::new(vec![uniform; 8]);
        assert!(cert.is_feasible(&g, 1e-12));
        assert!(cert.lower_bound() <= 1.0 + 1e-12);
    }
}
