//! CONGEST node program for Remark 4.4 (Theorem 1.1 without knowing Δ).
//!
//! The interesting systems problem here is **termination**: with Δ
//! unknown, no node can compute the iteration count in advance. Instead,
//! every node runs the iteration loop until *local stabilization* — itself
//! and its whole neighborhood dominated — and halts; the simulation ends
//! when the last node stabilizes, which Remark 4.4 bounds by
//! `O(log Δ/ε)` iterations.
//!
//! Each algorithm iteration spans **three rounds**:
//!
//! | sub-round | action |
//! |---|---|
//! | A | finish the previous iteration (apply `Dominated` events, raise undominated packing values); then, from the start-of-iteration snapshot: confident undominated nodes (`x_v > λτ_v`) send `Elect` to their cheapest closed neighbor, and threshold-crossing nodes with an undominated closed neighbor broadcast `Joined` |
//! | B | digest `Joined`; elected nodes join `S′` and broadcast `Joined` |
//! | C | digest the late `Joined`s; freshly dominated nodes broadcast `Dominated` |
//!
//! The centralized [`crate::unknown_delta::solve`] uses the same
//! simultaneous-snapshot semantics, and the equivalence tests require
//! bit-identical dominating sets and packing values.

use arbodom_congest::{
    run_parallel, Globals, Inbox, NodeCtx, NodeProgram, Outgoing, RunOptions, Step, Telemetry,
};
use arbodom_graph::{Graph, NodeId};

use super::msg::ProtocolMsg;
use super::RunConfig;
use crate::unknown_delta::Config;
use crate::{DsResult, PackingCertificate, Result};

/// Per-node output of the unknown-Δ program.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeOutput {
    /// Membership in `S ∪ S′`.
    pub in_ds: bool,
    /// Final packing value (certificate entry).
    pub x: f64,
    /// The iteration (0-based) at which this node stabilized.
    pub stabilized_at: usize,
}

/// The Remark 4.4 node program.
#[derive(Debug)]
pub struct UnknownDeltaProgram {
    cfg: Config,
    // ---- own state ----
    weight: u64,
    tau: u64,
    x: f64,
    in_s: bool,
    in_s_prime: bool,
    dominated: bool,
    /// Some broadcast already told neighbors this node is dominated.
    announced_dominated: bool,
    /// A `Joined` broadcast (membership, which also dominates the
    /// neighborhood) was already sent.
    announced_joined: bool,
    stabilized_at: usize,
    // ---- per-port mirrors ----
    nbr_weight: Vec<u64>,
    nbr_tau: Vec<u64>,
    nbr_x: Vec<f64>,
    nbr_dominated: Vec<bool>,
}

impl UnknownDeltaProgram {
    /// Creates the program for a node of the given degree.
    pub fn new(cfg: Config, degree: usize) -> Self {
        UnknownDeltaProgram {
            cfg,
            weight: 0,
            tau: 0,
            x: 0.0,
            in_s: false,
            in_s_prime: false,
            dominated: false,
            announced_dominated: false,
            announced_joined: false,
            stabilized_at: 0,
            nbr_weight: vec![0; degree],
            nbr_tau: vec![0; degree],
            nbr_x: vec![0.0; degree],
            nbr_dominated: vec![false; degree],
        }
    }

    fn lambda(&self) -> f64 {
        self.cfg.lambda()
    }

    fn x_sum(&self) -> f64 {
        let mut sum = self.x;
        for &xv in &self.nbr_x {
            sum += xv;
        }
        sum
    }

    fn cheapest_dominator(&self, ctx: &NodeCtx<'_>) -> Option<usize> {
        let mut best: (u64, NodeId) = (self.weight, ctx.id);
        let mut best_port = None;
        for (p, &u) in ctx.neighbors.iter().enumerate() {
            let cand = (self.nbr_weight[p], u);
            if cand < best {
                best = cand;
                best_port = Some(p);
            }
        }
        best_port
    }

    /// Digest `Joined`/`Dominated` events into the mirrors and own state.
    fn digest(&mut self, inbox: Inbox<'_, ProtocolMsg>) -> bool {
        let mut heard_join = false;
        for (port, &msg) in inbox {
            match msg {
                ProtocolMsg::Joined => {
                    self.nbr_dominated[port] = true;
                    heard_join = true;
                }
                ProtocolMsg::Dominated => {
                    self.nbr_dominated[port] = true;
                }
                _ => {}
            }
        }
        if heard_join {
            self.dominated = true;
        }
        heard_join
    }

    fn announce_if_fresh(&mut self, out: &mut Vec<Outgoing<ProtocolMsg>>) {
        if self.dominated && !self.announced_dominated {
            self.announced_dominated = true;
            out.push(Outgoing::broadcast(ProtocolMsg::Dominated));
        }
    }

    /// First `Joined` broadcast: marks both announcement flags.
    fn broadcast_joined(&mut self, out: &mut Vec<Outgoing<ProtocolMsg>>) {
        debug_assert!(!self.announced_joined);
        self.announced_joined = true;
        self.announced_dominated = true;
        self.dominated = true;
        out.push(Outgoing::broadcast(ProtocolMsg::Joined));
    }

    fn stabilized(&self) -> bool {
        self.dominated && self.nbr_dominated.iter().all(|&d| d)
    }
}

impl NodeProgram for UnknownDeltaProgram {
    type Message = ProtocolMsg;
    type Output = NodeOutput;

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: Inbox<'_, ProtocolMsg>) -> Step<ProtocolMsg> {
        let rd = ctx.round;
        match rd {
            0 => {
                self.weight = ctx.weight;
                Step::continue_with(vec![Outgoing::broadcast(ProtocolMsg::Weight(self.weight))])
            }
            1 => {
                for (port, &msg) in inbox {
                    if let ProtocolMsg::Weight(w) = msg {
                        self.nbr_weight[port] = w;
                    }
                }
                self.tau = self
                    .nbr_weight
                    .iter()
                    .copied()
                    .chain(std::iter::once(self.weight))
                    .min()
                    .expect("nonempty");
                Step::continue_with(vec![Outgoing::broadcast(ProtocolMsg::Tau(self.tau))])
            }
            2 => {
                // Second setup round: exchange closed-neighborhood sizes so
                // every node can form the local normalizer
                // max_{u∈N⁺(v)} |N⁺(u)| — Remark 4.4's replacement for Δ+1.
                for (port, &msg) in inbox {
                    if let ProtocolMsg::Tau(t) = msg {
                        self.nbr_tau[port] = t;
                    }
                }
                Step::continue_with(vec![Outgoing::broadcast(ProtocolMsg::Degree(
                    ctx.degree() as u64 + 1,
                ))])
            }
            _ => {
                if rd == 3 {
                    let my_closed = ctx.degree() as u64 + 1;
                    let max_closed = inbox
                        .iter()
                        .filter_map(|(_, &m)| match m {
                            ProtocolMsg::Degree(d) => Some(d),
                            _ => None,
                        })
                        .chain(std::iter::once(my_closed))
                        .max()
                        .expect("self always counted");
                    self.x = self.tau as f64 / max_closed as f64;
                    // Mirrors need neighbors' normalizers too; they are a
                    // function of *their* neighborhoods, which we cannot
                    // see. Send our normalizer so mirrors can initialize.
                    return Step::continue_with(vec![Outgoing::broadcast(ProtocolMsg::Weight(
                        max_closed,
                    ))]);
                }
                if rd == 4 {
                    for (port, &msg) in inbox {
                        if let ProtocolMsg::Weight(m) = msg {
                            self.nbr_x[port] = self.nbr_tau[port] as f64 / m as f64;
                        }
                    }
                    // Fall through into sub-round A of iteration 0 below.
                }
                let phase = (rd - 4) % 3;
                let iteration = (rd - 4) / 3;
                let one_plus_eps = 1.0 + self.cfg.epsilon;
                match phase {
                    0 => {
                        // ---- sub-round A ----
                        let mut out = Vec::new();
                        if iteration > 0 {
                            self.digest(inbox);
                            // Raise every still-undominated packing value:
                            // the finish of iteration −1.
                            if !self.dominated {
                                self.x *= one_plus_eps;
                            }
                            for p in 0..self.nbr_x.len() {
                                if !self.nbr_dominated[p] {
                                    self.nbr_x[p] *= one_plus_eps;
                                }
                            }
                            if self.stabilized() {
                                self.stabilized_at = iteration;
                                return Step::halt();
                            }
                        }
                        // Election (start-of-iteration snapshot).
                        if !self.dominated && self.x > self.lambda() * self.tau as f64 {
                            match self.cheapest_dominator(ctx) {
                                None => {
                                    self.in_s_prime = true;
                                    self.broadcast_joined(&mut out);
                                }
                                Some(port) => {
                                    out.push(Outgoing::to_port(port, ProtocolMsg::Elect));
                                }
                            }
                        }
                        // Join (start-of-iteration snapshot; only useful
                        // joins — see the centralized solver's comment).
                        let any_undominated =
                            !self.dominated || self.nbr_dominated.iter().any(|&d| !d);
                        if !self.in_s
                            && any_undominated
                            && !self.announced_joined
                            && self.x_sum() >= self.weight as f64 / one_plus_eps
                        {
                            self.in_s = true;
                            self.broadcast_joined(&mut out);
                        }
                        Step::continue_with(out)
                    }
                    1 => {
                        // ---- sub-round B ----
                        let mut out = Vec::new();
                        self.digest(inbox);
                        if inbox.iter().any(|(_, &m)| m == ProtocolMsg::Elect) {
                            self.in_s_prime = true;
                            if !self.announced_joined {
                                // Announce membership — even if a plain
                                // `Dominated` was sent before, the elector
                                // needs to learn it is now dominated.
                                self.broadcast_joined(&mut out);
                            }
                        }
                        Step::continue_with(out)
                    }
                    _ => {
                        // ---- sub-round C ----
                        let mut out = Vec::new();
                        self.digest(inbox);
                        self.announce_if_fresh(&mut out);
                        Step::continue_with(out)
                    }
                }
            }
        }
    }

    fn output(&self) -> NodeOutput {
        NodeOutput {
            in_ds: self.in_s || self.in_s_prime,
            x: self.x,
            stabilized_at: self.stabilized_at,
        }
    }
}

/// Runs Remark 4.4 as a real message-passing computation.
///
/// # Errors
///
/// Propagates configuration validation and simulation errors.
pub fn run_unknown_delta(
    g: &Graph,
    cfg: &Config,
    seed: u64,
    opts: &RunOptions,
) -> Result<(DsResult, Telemetry)> {
    run_unknown_delta_with(g, cfg, seed, &RunConfig::from_options(opts))
}

/// Positional-parameter variant of [`run_unknown_delta_with`].
///
/// # Errors
///
/// Propagates configuration validation and simulation errors.
#[deprecated(
    since = "0.1.0",
    note = "use run_unknown_delta_with and the RunConfig builder"
)]
pub fn run_unknown_delta_on(
    g: &Graph,
    cfg: &Config,
    seed: u64,
    opts: &RunOptions,
    threads: usize,
) -> Result<(DsResult, Telemetry)> {
    run_unknown_delta_with(
        g,
        cfg,
        seed,
        &RunConfig::from_options(opts).threads(threads),
    )
}

/// Like [`run_unknown_delta`], driven by a [`RunConfig`]: executed on
/// [`RunConfig::thread_count`] worker threads through [`run_parallel`]
/// (one thread falls back to the sequential [`run`]). Outputs and
/// telemetry are bit-identical at any thread count.
///
/// # Errors
///
/// Propagates configuration validation and simulation errors.
pub fn run_unknown_delta_with(
    g: &Graph,
    cfg: &Config,
    seed: u64,
    run_cfg: &RunConfig,
) -> Result<(DsResult, Telemetry)> {
    let (opts, threads) = (run_cfg.options(), run_cfg.thread_count());
    let globals = Globals::new(g, seed).with_arboricity(cfg.alpha);
    let make = |v: NodeId, g: &Graph| UnknownDeltaProgram::new(*cfg, g.degree(v));
    // `run_parallel` itself falls back to the sequential runner for
    // `threads <= 1` or tiny graphs, so one call covers every case.
    let run_out = run_parallel(g, &globals, make, opts, threads)?;
    let in_ds: Vec<bool> = run_out.outputs.iter().map(|o| o.in_ds).collect();
    let x: Vec<f64> = run_out.outputs.iter().map(|o| o.x).collect();
    let iterations = run_out
        .outputs
        .iter()
        .map(|o| o.stabilized_at)
        .max()
        .unwrap_or(0);
    Ok((
        DsResult::from_flags(g, in_ds, iterations, Some(PackingCertificate::new(x))),
        run_out.telemetry,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{unknown_delta, verify};
    use arbodom_congest::{run, MeterMode};
    use arbodom_graph::{generators, weights::WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn strict() -> RunOptions {
        RunOptions {
            meter: MeterMode::Strict,
            ..RunOptions::default()
        }
    }

    #[test]
    fn matches_centralized_sets() {
        let mut rng = StdRng::seed_from_u64(181);
        for alpha in [1usize, 2, 4] {
            for model in [WeightModel::Unit, WeightModel::Uniform { lo: 1, hi: 40 }] {
                let g = generators::forest_union(150, alpha, &mut rng);
                let g = model.assign(&g, &mut rng);
                let cfg = Config::new(alpha, 0.3).unwrap();
                let central = unknown_delta::solve(&g, &cfg).unwrap();
                let (dist, telemetry) = run_unknown_delta(&g, &cfg, 0, &strict()).unwrap();
                assert_eq!(central.in_ds, dist.in_ds, "α={alpha} {model:?}");
                assert!(telemetry.is_congest_compliant());
            }
        }
    }

    #[test]
    fn dominates_on_varied_topologies() {
        let mut rng = StdRng::seed_from_u64(182);
        let graphs = vec![
            generators::path(50),
            generators::star(70),
            generators::grid2d(8, 8, true),
            generators::gnp(100, 0.07, &mut rng),
            arbodom_graph::Graph::from_edges(6, [(0, 1), (2, 3)]).unwrap(),
        ];
        for g in graphs {
            let cfg = Config::new(2, 0.4).unwrap();
            let (sol, _) = run_unknown_delta(&g, &cfg, 1, &strict()).unwrap();
            assert!(verify::is_dominating_set(&g, &sol.in_ds));
        }
    }

    #[test]
    fn terminates_locally_without_global_knowledge() {
        // The program never reads globals.max_degree — spoof it to prove
        // the algorithm cannot be using it.
        let mut rng = StdRng::seed_from_u64(183);
        let g = generators::forest_union(200, 2, &mut rng);
        let cfg = Config::new(2, 0.25).unwrap();
        let mut globals = Globals::new(&g, 0);
        globals.max_degree = 999_999; // wrong on purpose
        let run_out = run(
            &g,
            &globals,
            |v, g| UnknownDeltaProgram::new(cfg, g.degree(v)),
            &strict(),
        )
        .unwrap();
        let in_ds: Vec<bool> = run_out.outputs.iter().map(|o| o.in_ds).collect();
        assert!(verify::is_dominating_set(&g, &in_ds));
    }

    #[test]
    fn rounds_scale_with_iterations_not_n() {
        let mut rng = StdRng::seed_from_u64(184);
        let small = generators::random_regular(200, 6, &mut rng);
        let large = generators::random_regular(3_200, 6, &mut rng);
        let cfg = Config::new(2, 0.3).unwrap();
        let (_, t_small) = run_unknown_delta(&small, &cfg, 0, &strict()).unwrap();
        let (_, t_large) = run_unknown_delta(&large, &cfg, 0, &strict()).unwrap();
        assert!(
            t_large.rounds <= t_small.rounds + 6,
            "rounds must not grow with n at fixed Δ: {} vs {}",
            t_small.rounds,
            t_large.rounds
        );
    }
}
