//! Unified run configuration for the distributed entry points.
//!
//! The `run_*_on` family grew one positional parameter at a time —
//! `(graph, cfg, seed, options, threads)` — until call sites became
//! hard to read and harder to extend. [`RunConfig`] folds the execution
//! knobs (worker threads, meter mode, round limit, shard size, loss
//! injection, round tracking) into one builder; the canonical entry
//! points are now the `run_*_with` functions, and the old positional
//! signatures remain as thin deprecated wrappers.
//!
//! Every knob is execution-only: outputs and telemetry are bit-identical
//! for any `threads`/`shard_size` choice, so a `RunConfig` never changes
//! *what* is computed, only how it is driven.
//!
//! # Example
//!
//! ```
//! use arbodom_congest::MeterMode;
//! use arbodom_core::distributed::{run_weighted_with, RunConfig};
//! use arbodom_core::weighted;
//! use arbodom_graph::generators;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let g = generators::forest_union(200, 2, &mut rng);
//! let cfg = weighted::Config::new(2, 0.2)?;
//! let run = RunConfig::new().threads(2).meter(MeterMode::Strict);
//! let (sol, telemetry) = run_weighted_with(&g, &cfg, 7, &run)?;
//! assert!(telemetry.rounds > 0);
//! assert_eq!(sol.in_ds.len(), g.n());
//! # Ok::<(), arbodom_core::CoreError>(())
//! ```

use arbodom_congest::{LossModel, MeterMode, RunOptions};

/// Execution configuration for the `run_*_with` entry points: worker
/// threads plus the simulator's [`RunOptions`], assembled through a
/// builder.
#[derive(Clone, Debug, Default)]
pub struct RunConfig {
    threads: usize,
    opts: RunOptions,
}

impl RunConfig {
    /// The default configuration: sequential execution, measured
    /// metering, default round limit, no fault injection.
    pub fn new() -> Self {
        RunConfig::default()
    }

    /// Wraps existing simulator options (bridge for call sites that
    /// already hold a [`RunOptions`]).
    pub fn from_options(opts: &RunOptions) -> Self {
        RunConfig {
            threads: 0,
            opts: opts.clone(),
        }
    }

    /// Number of worker threads. `0` or `1` selects the sequential
    /// runner; results are bit-identical either way.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Metering behavior for the CONGEST bit budget.
    pub fn meter(mut self, meter: MeterMode) -> Self {
        self.opts.meter = meter;
        self
    }

    /// Hard limit on executed rounds.
    pub fn max_rounds(mut self, max_rounds: usize) -> Self {
        self.opts.max_rounds = max_rounds;
        self
    }

    /// Record per-round statistics (costs memory proportional to rounds).
    pub fn track_rounds(mut self, track: bool) -> Self {
        self.opts.track_rounds = track;
        self
    }

    /// Message-loss fault injection (`None` disables it).
    pub fn loss(mut self, loss: Option<LossModel>) -> Self {
        self.opts.loss = loss;
        self
    }

    /// Nodes per shard for the parallel runner (`None` auto-sizes).
    pub fn shard_size(mut self, shard_size: Option<usize>) -> Self {
        self.opts.shard_size = shard_size;
        self
    }

    /// The simulator options this configuration resolves to.
    pub fn options(&self) -> &RunOptions {
        &self.opts
    }

    /// The effective worker-thread count (at least 1).
    pub fn thread_count(&self) -> usize {
        self.threads.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_every_knob() {
        let run = RunConfig::new()
            .threads(4)
            .meter(MeterMode::Off)
            .max_rounds(123)
            .track_rounds(true)
            .shard_size(Some(64))
            .loss(Some(LossModel {
                drop_probability: 0.5,
                seed: 9,
            }));
        assert_eq!(run.thread_count(), 4);
        assert_eq!(run.options().meter, MeterMode::Off);
        assert_eq!(run.options().max_rounds, 123);
        assert!(run.options().track_rounds);
        assert_eq!(run.options().shard_size, Some(64));
        assert_eq!(run.options().loss.as_ref().unwrap().seed, 9);
    }

    #[test]
    fn zero_threads_means_sequential() {
        assert_eq!(RunConfig::new().thread_count(), 1);
        assert_eq!(RunConfig::new().threads(0).thread_count(), 1);
    }

    #[test]
    fn from_options_preserves_fields() {
        let opts = RunOptions {
            max_rounds: 7,
            meter: MeterMode::Strict,
            ..RunOptions::default()
        };
        let run = RunConfig::from_options(&opts);
        assert_eq!(run.options().max_rounds, 7);
        assert_eq!(run.options().meter, MeterMode::Strict);
    }
}
