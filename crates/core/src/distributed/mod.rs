//! Bit-faithful CONGEST implementations of the paper's algorithms.
//!
//! The centralized solvers in this crate simulate the algorithms round by
//! round but "teleport" state between neighbors. The node programs here
//! exchange *actual messages* through [`arbodom_congest`] — every bit is
//! encoded, metered against the CONGEST `O(log n)` budget, and delivered
//! with one round of latency.
//!
//! The message protocol is deliberately frugal, matching the paper's
//! `O(1)`-rounds-per-iteration claim:
//!
//! * two setup rounds exchange weights and `τ` values (`O(log n)` bits,
//!   once);
//! * each Lemma 4.1 / Lemma 4.6 iteration costs **two rounds of
//!   single-byte events** (`Joined`, `Dominated`): packing values are never
//!   transmitted — neighbors *mirror* each other's `x_v` exactly, because
//!   `x_v` is a deterministic function of `τ_v` and the public event
//!   history;
//! * the completion step costs two more rounds (`Elect`).
//!
//! Every program is tested to produce **identical output** (sets *and*
//! packing values) to its centralized counterpart; randomized programs
//! share their coin flips with the centralized solver through
//! [`arbodom_congest::det_rand`].
//!
//! Coverage: Theorem 1.1 ([`run_weighted`]), Theorem 1.2
//! ([`run_randomized`]), Theorem 1.3 ([`run_general`]), Observation A.1
//! ([`run_trees`]), and Remark 4.4 ([`run_unknown_delta`] — the
//! unknown-Δ variant, whose termination is by *local stabilization*
//! rather than a precomputed round count).

mod config;
mod msg;
mod randomized;
mod trees;
mod unknown_delta;
mod weighted;

pub use config::RunConfig;
pub use msg::ProtocolMsg;
pub use randomized::{
    run_general, run_general_with, run_randomized, run_randomized_with,
    NodeOutput as RandomizedNodeOutput, RandomizedProgram,
};
#[allow(deprecated)]
pub use randomized::{run_general_on, run_randomized_on};
#[allow(deprecated)]
pub use trees::run_trees_on;
pub use trees::{run_trees, run_trees_with, TreeProgram};
#[allow(deprecated)]
pub use unknown_delta::run_unknown_delta_on;
pub use unknown_delta::{
    run_unknown_delta, run_unknown_delta_with, NodeOutput as UnknownDeltaNodeOutput,
    UnknownDeltaProgram,
};
#[allow(deprecated)]
pub use weighted::run_weighted_on;
pub use weighted::{
    run_weighted, run_weighted_with, NodeOutput as WeightedNodeOutput, WeightedProgram,
};
