//! CONGEST node program for Theorem 1.2 (randomized weighted MDS).
//!
//! The schedule chains the Lemma 4.1 rounds of
//! [`super::weighted::WeightedProgram`] with the sampling phases of
//! Lemma 4.6 (`r₁` = partial iterations, `t` = phases, `r₂` = iterations
//! per phase):
//!
//! | round | action |
//! |---|---|
//! | 0, 1 | `Weight` / `Tau` setup |
//! | 2+2i, 3+2i (i < r₁) | Lemma 4.1 iteration i (A/B as in the weighted program) |
//! | base+2j, base+2j+1 (j < t·r₂, base = 2+2r₁) | Lemma 4.6 phase ⌊j/r₂⌋+1, iteration (j mod r₂)+1: sample from Γ with the public probability schedule, announce `Joined`/`Dominated` |
//! | base+2t·r₂ | fallback elections (provably unreachable; kept for f64 safety) |
//! | base+2t·r₂+1 | elected nodes join; all halt |
//!
//! Sampling decisions are the *same coin flips* the centralized solver
//! makes — `det_rand::bernoulli(seed, [TAG, phase, iter, node], p)` — so
//! the two implementations produce identical dominating sets, which the
//! tests assert.

use arbodom_congest::{
    det_rand, run_parallel, Globals, Inbox, NodeCtx, NodeProgram, Outgoing, RunOptions, Step,
    Telemetry,
};
use arbodom_graph::{Graph, NodeId};

use super::msg::ProtocolMsg;
use super::RunConfig;
use crate::extend::{sampling_probability, ExtendConfig, EXTEND_RAND_TAG};
use crate::partial::PartialConfig;
use crate::randomized::Config;
use crate::{DsResult, PackingCertificate, Result};

/// Per-node output of the randomized program.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeOutput {
    /// Membership in `S ∪ S′`.
    pub in_ds: bool,
    /// The packing value at the end of Lemma 4.1 (the certificate entry;
    /// the γ-multiplied working values are internal to Lemma 4.6).
    pub x_certificate: f64,
}

/// Which theorem's parameterization the program runs.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Mode {
    /// Theorem 1.2: Lemma 4.1 with (ε, λ) then Lemma 4.6 with (λ, γ).
    Theorem12(Config),
    /// Theorem 1.3: Lemma 4.6 alone with `S = ∅`, `λ = 1/(Δ+1)`,
    /// `γ = Δ^{1/k}` (Δ read from the public globals at round 2).
    Theorem13(crate::general::Config),
}

/// The Theorem 1.2 / Theorem 1.3 node program.
#[derive(Debug)]
pub struct RandomizedProgram {
    mode: Mode,
    epsilon: f64,
    lambda: f64,
    gamma: f64,
    seed: u64,
    // ---- own state ----
    weight: u64,
    tau: u64,
    x: f64,
    x_certificate: f64,
    in_s: bool,
    in_s_prime: bool,
    dominated: bool,
    announced: bool,
    // ---- per-port mirrors ----
    nbr_weight: Vec<u64>,
    nbr_x: Vec<f64>,
    nbr_dominated: Vec<bool>,
    // ---- schedule (filled at round 2) ----
    r1: usize,
    t_phases: usize,
    r_iters: usize,
}

impl RandomizedProgram {
    /// Creates the Theorem 1.2 program for a node of the given degree.
    pub fn new(cfg: Config, degree: usize) -> Self {
        Self::with_mode(Mode::Theorem12(cfg), degree)
    }

    /// Creates the Theorem 1.3 program (Lemma 4.6 alone, `S = ∅`).
    pub fn new_general(cfg: crate::general::Config, degree: usize) -> Self {
        Self::with_mode(Mode::Theorem13(cfg), degree)
    }

    fn with_mode(mode: Mode, degree: usize) -> Self {
        RandomizedProgram {
            mode,
            // λ and γ are finalized at round 2 (Theorem 1.3 needs Δ).
            epsilon: 0.0,
            lambda: 0.0,
            gamma: 0.0,
            seed: 0,
            weight: 0,
            tau: 0,
            x: 0.0,
            x_certificate: 0.0,
            in_s: false,
            in_s_prime: false,
            dominated: false,
            announced: false,
            nbr_weight: vec![0; degree],
            nbr_x: vec![0.0; degree],
            nbr_dominated: vec![false; degree],
            r1: 0,
            t_phases: 0,
            r_iters: 0,
        }
    }

    fn apply_dominated_events(&mut self, inbox: Inbox<'_, ProtocolMsg>) {
        for (port, &msg) in inbox {
            match msg {
                ProtocolMsg::Dominated | ProtocolMsg::Joined => {
                    self.nbr_dominated[port] = true;
                }
                _ => {}
            }
        }
    }

    fn raise_undominated(&mut self, factor: f64) {
        if !self.dominated {
            self.x *= factor;
        }
        for p in 0..self.nbr_x.len() {
            if !self.nbr_dominated[p] {
                self.nbr_x[p] *= factor;
            }
        }
    }

    /// `X_u` over all closed neighbors (Lemma 4.1 semantics).
    fn x_sum_all(&self) -> f64 {
        let mut sum = self.x;
        for &xv in &self.nbr_x {
            sum += xv;
        }
        sum
    }

    /// `X_u` over *undominated* closed neighbors (Lemma 4.6 semantics).
    fn x_sum_undominated(&self) -> f64 {
        let mut sum = if self.dominated { 0.0 } else { self.x };
        for p in 0..self.nbr_x.len() {
            if !self.nbr_dominated[p] {
                sum += self.nbr_x[p];
            }
        }
        sum
    }

    fn cheapest_dominator(&self, ctx: &NodeCtx<'_>) -> Option<usize> {
        let mut best: (u64, NodeId) = (self.weight, ctx.id);
        let mut best_port = None;
        for (p, &u) in ctx.neighbors.iter().enumerate() {
            let cand = (self.nbr_weight[p], u);
            if cand < best {
                best = cand;
                best_port = Some(p);
            }
        }
        best_port
    }

    fn part_b(&mut self, inbox: Inbox<'_, ProtocolMsg>) -> Vec<Outgoing<ProtocolMsg>> {
        let mut heard_join = false;
        for (port, &msg) in inbox {
            if msg == ProtocolMsg::Joined {
                self.nbr_dominated[port] = true;
                heard_join = true;
            }
        }
        if heard_join {
            self.dominated = true;
        }
        if self.dominated && !self.announced {
            self.announced = true;
            return vec![Outgoing::broadcast(ProtocolMsg::Dominated)];
        }
        Vec::new()
    }
}

impl NodeProgram for RandomizedProgram {
    type Message = ProtocolMsg;
    type Output = NodeOutput;

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: Inbox<'_, ProtocolMsg>) -> Step<ProtocolMsg> {
        let rd = ctx.round;
        match rd {
            0 => {
                self.weight = ctx.weight;
                Step::continue_with(vec![Outgoing::broadcast(ProtocolMsg::Weight(self.weight))])
            }
            1 => {
                for (port, &msg) in inbox {
                    if let ProtocolMsg::Weight(w) = msg {
                        self.nbr_weight[port] = w;
                    }
                }
                self.tau = self
                    .nbr_weight
                    .iter()
                    .copied()
                    .chain(std::iter::once(self.weight))
                    .min()
                    .expect("nonempty");
                Step::continue_with(vec![Outgoing::broadcast(ProtocolMsg::Tau(self.tau))])
            }
            _ => {
                if rd == 2 {
                    let dp1 = (ctx.globals.max_degree + 1) as f64;
                    self.x = self.tau as f64 / dp1;
                    for (port, &msg) in inbox {
                        if let ProtocolMsg::Tau(t) = msg {
                            self.nbr_x[port] = t as f64 / dp1;
                        }
                    }
                    match self.mode {
                        Mode::Theorem12(cfg) => {
                            self.epsilon = cfg.epsilon();
                            self.lambda = cfg.lambda();
                            self.gamma = cfg.gamma();
                            self.seed = cfg.seed;
                            let pcfg = PartialConfig::new(self.epsilon, self.lambda)
                                .expect("validated at run entry");
                            self.r1 = pcfg.iterations(ctx.globals.max_degree);
                        }
                        Mode::Theorem13(cfg) => {
                            self.epsilon = 0.0;
                            self.lambda = 1.0 / (ctx.globals.max_degree + 1) as f64;
                            self.gamma = cfg.gamma(ctx.globals.max_degree);
                            self.seed = cfg.seed;
                            self.r1 = 0; // Theorem 1.3 takes S = ∅
                        }
                    }
                    let ecfg = ExtendConfig::new(self.lambda, self.gamma, self.seed)
                        .expect("validated at run entry");
                    self.t_phases = ecfg.phases();
                    self.r_iters = ecfg.iterations_per_phase(ctx.globals.max_degree);
                }
                let base = 2 + 2 * self.r1;
                let fallback_round = base + 2 * self.t_phases * self.r_iters;
                if rd < base {
                    // ---- Lemma 4.1 phase ----
                    let i = (rd - 2) / 2;
                    if (rd - 2) % 2 == 0 {
                        if i > 0 {
                            self.apply_dominated_events(inbox);
                            self.raise_undominated(1.0 + self.epsilon);
                        }
                        if !self.in_s {
                            let threshold = self.weight as f64 / (1.0 + self.epsilon);
                            if self.x_sum_all() >= threshold {
                                self.in_s = true;
                                self.dominated = true;
                                self.announced = true;
                                return Step::continue_with(vec![Outgoing::broadcast(
                                    ProtocolMsg::Joined,
                                )]);
                            }
                        }
                        Step::idle()
                    } else {
                        Step::continue_with(self.part_b(inbox))
                    }
                } else if rd < fallback_round {
                    // ---- Lemma 4.6 phase ----
                    let j = (rd - base) / 2;
                    let phase = j / self.r_iters + 1;
                    let iter = j % self.r_iters + 1;
                    if (rd - base) % 2 == 0 {
                        self.apply_dominated_events(inbox);
                        if j == 0 {
                            // Finish the last Lemma 4.1 iteration and
                            // snapshot the certificate values.
                            if self.r1 > 0 {
                                self.raise_undominated(1.0 + self.epsilon);
                            }
                            self.x_certificate = self.x;
                        } else if iter == 1 {
                            // Phase boundary: the γ-raise of the previous
                            // phase's end.
                            self.raise_undominated(self.gamma);
                        }
                        if !self.in_s && !self.in_s_prime {
                            let gamma_threshold = self.weight as f64 / self.gamma;
                            if self.x_sum_undominated() >= gamma_threshold {
                                let dp1 = (ctx.globals.max_degree + 1) as f64;
                                let p = sampling_probability(self.gamma, dp1, iter, self.r_iters);
                                if det_rand::bernoulli(
                                    self.seed,
                                    &[
                                        EXTEND_RAND_TAG,
                                        phase as u64,
                                        iter as u64,
                                        u64::from(ctx.id.get()),
                                    ],
                                    p,
                                ) {
                                    self.in_s_prime = true;
                                    self.dominated = true;
                                    self.announced = true;
                                    return Step::continue_with(vec![Outgoing::broadcast(
                                        ProtocolMsg::Joined,
                                    )]);
                                }
                            }
                        }
                        Step::idle()
                    } else {
                        Step::continue_with(self.part_b(inbox))
                    }
                } else if rd == fallback_round {
                    self.apply_dominated_events(inbox);
                    if self.r1 == 0 && self.t_phases * self.r_iters == 0 {
                        self.x_certificate = self.x;
                    }
                    if self.dominated {
                        return Step::idle();
                    }
                    match self.cheapest_dominator(ctx) {
                        None => {
                            self.in_s_prime = true;
                            Step::idle()
                        }
                        Some(port) => {
                            Step::continue_with(vec![Outgoing::to_port(port, ProtocolMsg::Elect)])
                        }
                    }
                } else {
                    if inbox.iter().any(|(_, &m)| m == ProtocolMsg::Elect) {
                        self.in_s_prime = true;
                    }
                    Step::halt()
                }
            }
        }
    }

    fn output(&self) -> NodeOutput {
        NodeOutput {
            in_ds: self.in_s || self.in_s_prime,
            x_certificate: self.x_certificate,
        }
    }
}

/// Runs Theorem 1.2 as a real message-passing computation.
///
/// # Errors
///
/// Propagates configuration validation and simulation errors.
pub fn run_randomized(g: &Graph, cfg: &Config, opts: &RunOptions) -> Result<(DsResult, Telemetry)> {
    run_randomized_with(g, cfg, &RunConfig::from_options(opts))
}

/// Positional-parameter variant of [`run_randomized_with`].
///
/// # Errors
///
/// Propagates configuration validation and simulation errors.
#[deprecated(
    since = "0.1.0",
    note = "use run_randomized_with and the RunConfig builder"
)]
pub fn run_randomized_on(
    g: &Graph,
    cfg: &Config,
    opts: &RunOptions,
    threads: usize,
) -> Result<(DsResult, Telemetry)> {
    run_randomized_with(g, cfg, &RunConfig::from_options(opts).threads(threads))
}

/// Like [`run_randomized`], driven by a [`RunConfig`]: executed on
/// [`RunConfig::thread_count`] worker threads through [`run_parallel`]
/// (one thread falls back to the sequential [`run`]). Randomness is drawn
/// through [`det_rand`], so outputs and telemetry are bit-identical at
/// any thread count.
///
/// # Errors
///
/// Propagates configuration validation and simulation errors.
pub fn run_randomized_with(
    g: &Graph,
    cfg: &Config,
    run_cfg: &RunConfig,
) -> Result<(DsResult, Telemetry)> {
    let (opts, threads) = (run_cfg.options(), run_cfg.thread_count());
    let pcfg = PartialConfig::new(cfg.epsilon(), cfg.lambda())?;
    let ecfg = ExtendConfig::new(cfg.lambda(), cfg.gamma(), cfg.seed)?;
    let globals = Globals::new(g, cfg.seed).with_arboricity(cfg.alpha);
    let make = |v: NodeId, g: &Graph| RandomizedProgram::new(*cfg, g.degree(v));
    // `run_parallel` itself falls back to the sequential runner for
    // `threads <= 1` or tiny graphs, so one call covers every case.
    let run_out = run_parallel(g, &globals, make, opts, threads)?;
    let in_ds: Vec<bool> = run_out.outputs.iter().map(|o| o.in_ds).collect();
    let x: Vec<f64> = run_out.outputs.iter().map(|o| o.x_certificate).collect();
    let iterations =
        pcfg.iterations(g.max_degree()) + ecfg.phases() * ecfg.iterations_per_phase(g.max_degree());
    Ok((
        DsResult::from_flags(g, in_ds, iterations, Some(PackingCertificate::new(x))),
        run_out.telemetry,
    ))
}

/// Runs Theorem 1.3 as a real message-passing computation: Lemma 4.6
/// alone over the initial packing `τ_v/(Δ+1)`, with `γ = Δ^{1/k}` —
/// `O(k²)` rounds of single-byte traffic after setup.
///
/// # Errors
///
/// Propagates configuration validation and simulation errors.
pub fn run_general(
    g: &Graph,
    cfg: &crate::general::Config,
    opts: &RunOptions,
) -> Result<(DsResult, Telemetry)> {
    run_general_with(g, cfg, &RunConfig::from_options(opts))
}

/// Positional-parameter variant of [`run_general_with`].
///
/// # Errors
///
/// Propagates configuration validation and simulation errors.
#[deprecated(
    since = "0.1.0",
    note = "use run_general_with and the RunConfig builder"
)]
pub fn run_general_on(
    g: &Graph,
    cfg: &crate::general::Config,
    opts: &RunOptions,
    threads: usize,
) -> Result<(DsResult, Telemetry)> {
    run_general_with(g, cfg, &RunConfig::from_options(opts).threads(threads))
}

/// Like [`run_general`], driven by a [`RunConfig`]: executed on
/// [`RunConfig::thread_count`] worker threads through [`run_parallel`]
/// (one thread falls back to the sequential [`run`]). Outputs and
/// telemetry are bit-identical at any thread count.
///
/// # Errors
///
/// Propagates configuration validation and simulation errors.
pub fn run_general_with(
    g: &Graph,
    cfg: &crate::general::Config,
    run_cfg: &RunConfig,
) -> Result<(DsResult, Telemetry)> {
    let (opts, threads) = (run_cfg.options(), run_cfg.thread_count());
    let ecfg = ExtendConfig::new(
        1.0 / (g.max_degree() + 1) as f64,
        cfg.gamma(g.max_degree()),
        cfg.seed,
    )?;
    let globals = Globals::new(g, cfg.seed);
    let make = |v: NodeId, g: &Graph| RandomizedProgram::new_general(*cfg, g.degree(v));
    // `run_parallel` itself falls back to the sequential runner for
    // `threads <= 1` or tiny graphs, so one call covers every case.
    let run_out = run_parallel(g, &globals, make, opts, threads)?;
    let in_ds: Vec<bool> = run_out.outputs.iter().map(|o| o.in_ds).collect();
    let x: Vec<f64> = run_out.outputs.iter().map(|o| o.x_certificate).collect();
    let iterations = ecfg.phases() * ecfg.iterations_per_phase(g.max_degree());
    Ok((
        DsResult::from_flags(g, in_ds, iterations, Some(PackingCertificate::new(x))),
        run_out.telemetry,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{randomized, verify};
    use arbodom_congest::MeterMode;
    use arbodom_graph::{generators, weights::WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn strict() -> RunOptions {
        RunOptions {
            meter: MeterMode::Strict,
            ..RunOptions::default()
        }
    }

    #[test]
    fn matches_centralized_exactly() {
        let mut rng = StdRng::seed_from_u64(161);
        for alpha in [1usize, 3] {
            for t in [1usize, 2] {
                let g = generators::forest_union(120, alpha, &mut rng);
                let g = WeightModel::Uniform { lo: 1, hi: 25 }.assign(&g, &mut rng);
                let cfg = Config::new(alpha, t, 97).unwrap();
                let central = randomized::solve(&g, &cfg).unwrap();
                let (dist, telemetry) = run_randomized(&g, &cfg, &strict()).unwrap();
                assert_eq!(central.in_ds, dist.in_ds, "α={alpha} t={t}");
                assert!(telemetry.is_congest_compliant());
            }
        }
    }

    #[test]
    fn certificate_matches_partial_packing() {
        let mut rng = StdRng::seed_from_u64(162);
        let g = generators::forest_union(100, 2, &mut rng);
        let cfg = Config::new(2, 2, 5).unwrap();
        let central = randomized::solve(&g, &cfg).unwrap();
        let (dist, _) = run_randomized(&g, &cfg, &strict()).unwrap();
        assert_eq!(
            central.certificate.as_ref().unwrap().values(),
            dist.certificate.as_ref().unwrap().values()
        );
    }

    #[test]
    fn dominating_and_compliant_on_general_graphs() {
        let mut rng = StdRng::seed_from_u64(163);
        let g = generators::gnp(150, 0.06, &mut rng);
        let cfg = Config::new(4, 2, 31).unwrap();
        let (sol, telemetry) = run_randomized(&g, &cfg, &strict()).unwrap();
        assert!(verify::is_dominating_set(&g, &sol.in_ds));
        assert!(telemetry.is_congest_compliant());
        assert!(telemetry.max_message_bits <= 8 + 8 * 10);
    }

    #[test]
    fn round_count_matches_schedule() {
        let mut rng = StdRng::seed_from_u64(164);
        let g = generators::forest_union(80, 2, &mut rng);
        let cfg = Config::new(2, 1, 0).unwrap();
        let pcfg = PartialConfig::new(cfg.epsilon(), cfg.lambda()).unwrap();
        let ecfg = ExtendConfig::new(cfg.lambda(), cfg.gamma(), 0).unwrap();
        let r1 = pcfg.iterations(g.max_degree());
        let ext = ecfg.phases() * ecfg.iterations_per_phase(g.max_degree());
        let (_, telemetry) = run_randomized(&g, &cfg, &strict()).unwrap();
        assert_eq!(telemetry.rounds, 2 + 2 * r1 + 2 * ext + 2);
    }

    #[test]
    fn general_mode_matches_centralized() {
        let mut rng = StdRng::seed_from_u64(166);
        for k in [1usize, 2, 3] {
            let g = generators::gnp(130, 0.08, &mut rng);
            let g = WeightModel::Uniform { lo: 1, hi: 15 }.assign(&g, &mut rng);
            let cfg = crate::general::Config::new(k, 55).unwrap();
            let central = crate::general::solve(&g, &cfg).unwrap();
            let (dist, telemetry) = run_general(&g, &cfg, &strict()).unwrap();
            assert_eq!(central.in_ds, dist.in_ds, "k={k}");
            assert_eq!(
                central.certificate.as_ref().unwrap().values(),
                dist.certificate.as_ref().unwrap().values(),
                "k={k}"
            );
            assert!(telemetry.is_congest_compliant());
        }
    }

    #[test]
    fn general_mode_round_count_quadratic_in_k() {
        let mut rng = StdRng::seed_from_u64(167);
        let g = generators::gnp(200, 0.1, &mut rng);
        let rounds: Vec<usize> = [1usize, 2, 4]
            .iter()
            .map(|&k| {
                let cfg = crate::general::Config::new(k, 3).unwrap();
                run_general(&g, &cfg, &strict()).unwrap().1.rounds
            })
            .collect();
        assert!(rounds[1] > rounds[0] && rounds[2] > rounds[1], "{rounds:?}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut rng = StdRng::seed_from_u64(165);
        let g = generators::forest_union(200, 3, &mut rng);
        let (a, _) = run_randomized(&g, &Config::new(3, 2, 1).unwrap(), &strict()).unwrap();
        let (b, _) = run_randomized(&g, &Config::new(3, 2, 2).unwrap(), &strict()).unwrap();
        assert_ne!(a.in_ds, b.in_ds);
    }
}
