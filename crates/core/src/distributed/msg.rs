//! The wire protocol shared by the dominating-set node programs.

use arbodom_congest::{get_u64, get_uvarint, put_u64, put_uvarint, Wire, WireError};
use bytes::{BufMut, BytesMut};

/// Messages of the primal-dual protocols.
///
/// Steady-state traffic is the single-byte events; the two `u64`-carrying
/// variants appear only in the two setup rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolMsg {
    /// Setup round 0: the sender's weight `w_v`.
    Weight(u64),
    /// Setup round 1: the sender's `τ_v = min_{u∈N⁺(v)} w_u`.
    Tau(u64),
    /// The sender joined the (partial) dominating set this iteration.
    Joined,
    /// The sender became dominated this iteration (and did not join).
    Dominated,
    /// The sender elects the receiver into the dominating set
    /// (completion / fallback step).
    Elect,
    /// The sender's degree (used by the tree program's single exchange).
    Degree(u64),
}

const TAG_WEIGHT: u8 = 0;
const TAG_TAU: u8 = 1;
const TAG_JOINED: u8 = 2;
const TAG_DOMINATED: u8 = 3;
const TAG_ELECT: u8 = 4;
const TAG_DEGREE: u8 = 5;

impl Wire for ProtocolMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ProtocolMsg::Weight(w) => {
                buf.put_u8(TAG_WEIGHT);
                put_u64(buf, *w);
            }
            ProtocolMsg::Tau(t) => {
                buf.put_u8(TAG_TAU);
                put_u64(buf, *t);
            }
            ProtocolMsg::Joined => buf.put_u8(TAG_JOINED),
            ProtocolMsg::Dominated => buf.put_u8(TAG_DOMINATED),
            ProtocolMsg::Elect => buf.put_u8(TAG_ELECT),
            ProtocolMsg::Degree(d) => {
                buf.put_u8(TAG_DEGREE);
                put_uvarint(buf, *d);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        if buf.is_empty() {
            return Err(WireError::Truncated);
        }
        let tag = buf[0];
        *buf = &buf[1..];
        match tag {
            TAG_WEIGHT => Ok(ProtocolMsg::Weight(get_u64(buf)?)),
            TAG_TAU => Ok(ProtocolMsg::Tau(get_u64(buf)?)),
            TAG_JOINED => Ok(ProtocolMsg::Joined),
            TAG_DOMINATED => Ok(ProtocolMsg::Dominated),
            TAG_ELECT => Ok(ProtocolMsg::Elect),
            TAG_DEGREE => Ok(ProtocolMsg::Degree(get_uvarint(buf)?)),
            _ => Err(WireError::Invalid("unknown protocol tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        for msg in [
            ProtocolMsg::Weight(0),
            ProtocolMsg::Weight(u64::MAX),
            ProtocolMsg::Tau(12345),
            ProtocolMsg::Joined,
            ProtocolMsg::Dominated,
            ProtocolMsg::Elect,
            ProtocolMsg::Degree(77),
        ] {
            let mut buf = BytesMut::new();
            msg.encode(&mut buf);
            let bytes = buf.freeze();
            let mut slice = &bytes[..];
            assert_eq!(ProtocolMsg::decode(&mut slice).unwrap(), msg);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn events_are_one_byte() {
        assert_eq!(ProtocolMsg::Joined.encoded_bits(), 8);
        assert_eq!(ProtocolMsg::Dominated.encoded_bits(), 8);
        assert_eq!(ProtocolMsg::Elect.encoded_bits(), 8);
    }

    #[test]
    fn setup_messages_are_logarithmic() {
        // A weight bounded by n^c takes O(log n) bits as a varint.
        assert!(ProtocolMsg::Weight(1_000_000).encoded_bits() <= 8 + 8 * 10);
    }

    #[test]
    fn unknown_tag_rejected() {
        let bad: &[u8] = &[99];
        let mut slice = bad;
        assert!(ProtocolMsg::decode(&mut slice).is_err());
    }
}
