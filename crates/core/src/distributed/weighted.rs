//! CONGEST node program for Theorem 1.1 (deterministic weighted MDS).
//!
//! Round schedule (`r` = Lemma 4.1 iteration count, computed locally from
//! the public `Δ, α, ε`):
//!
//! | round | action |
//! |---|---|
//! | 0 | broadcast `Weight(w_v)` |
//! | 1 | learn neighbor weights; compute and broadcast `Tau(τ_v)` |
//! | 2+2i | *iteration i, part A*: finish iteration i−1 bookkeeping (apply `Dominated` events, raise undominated mirrors), compute `X_u`, possibly join `S`, broadcast `Joined` |
//! | 3+2i | *iteration i, part B*: apply `Joined` events; if newly dominated, broadcast `Dominated` |
//! | 2+2r | completion: undominated nodes elect the cheapest closed neighbor (`Elect` to its port, or join themselves) |
//! | 3+2r | elected nodes join `S′`; all halt |
//!
//! Neighbors never exchange packing values: each node mirrors its
//! neighbors' `x` (initialized from the `Tau` exchange, multiplied by
//! `(1+ε)` in exactly the rounds the owner multiplies), so after setup all
//! traffic is single-byte events — which is how the paper's
//! `O(log(Δ/α)/ε)`-round claim translates to `O(log n)`-bit CONGEST
//! compliance with room to spare.

use arbodom_congest::{
    run_parallel, Globals, Inbox, NodeCtx, NodeProgram, Outgoing, RunOptions, Step, Telemetry,
};
use arbodom_graph::{Graph, NodeId};

use super::msg::ProtocolMsg;
use super::RunConfig;
use crate::partial::PartialConfig;
use crate::weighted::Config;
use crate::{DsResult, PackingCertificate, Result};

/// Per-node output of the weighted program.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeOutput {
    /// Membership in `S ∪ S′`.
    pub in_ds: bool,
    /// Final packing value `x_v` (the dual certificate entry).
    pub x: f64,
}

/// The Theorem 1.1 node program.
#[derive(Debug)]
pub struct WeightedProgram {
    cfg: Config,
    // ---- own state ----
    weight: u64,
    tau: u64,
    x: f64,
    in_s: bool,
    in_s_prime: bool,
    dominated: bool,
    announced: bool,
    // ---- per-port mirrors ----
    nbr_weight: Vec<u64>,
    nbr_x: Vec<f64>,
    nbr_dominated: Vec<bool>,
    // ---- schedule ----
    r: usize,
}

impl WeightedProgram {
    /// Creates the program for a node of the given degree.
    pub fn new(cfg: Config, degree: usize) -> Self {
        WeightedProgram {
            cfg,
            weight: 0,
            tau: 0,
            x: 0.0,
            in_s: false,
            in_s_prime: false,
            dominated: false,
            announced: false,
            nbr_weight: vec![0; degree],
            nbr_x: vec![0.0; degree],
            nbr_dominated: vec![false; degree],
            r: 0,
        }
    }

    /// `X_u` in the same summation order as the centralized solver
    /// (self first, then ports ascending).
    fn x_sum(&self) -> f64 {
        let mut sum = self.x;
        for &xv in &self.nbr_x {
            sum += xv;
        }
        sum
    }

    /// The `(weight, id)`-minimal member of the closed neighborhood; `None`
    /// means "self".
    fn cheapest_dominator(&self, ctx: &NodeCtx<'_>) -> Option<usize> {
        let mut best: (u64, NodeId) = (self.weight, ctx.id);
        let mut best_port = None;
        for (p, &u) in ctx.neighbors.iter().enumerate() {
            let cand = (self.nbr_weight[p], u);
            if cand < best {
                best = cand;
                best_port = Some(p);
            }
        }
        best_port
    }

    fn apply_dominated_events(&mut self, inbox: Inbox<'_, ProtocolMsg>) {
        for (port, &msg) in inbox {
            match msg {
                ProtocolMsg::Dominated | ProtocolMsg::Joined => {
                    self.nbr_dominated[port] = true;
                }
                _ => {}
            }
        }
    }

    /// End-of-iteration bookkeeping: raise every still-undominated packing
    /// value (own and mirrored) by `(1+ε)` — the same multiplication the
    /// owner performs, so mirrors stay bit-exact.
    fn raise_undominated(&mut self) {
        let f = 1.0 + self.cfg.epsilon;
        if !self.dominated {
            self.x *= f;
        }
        for p in 0..self.nbr_x.len() {
            if !self.nbr_dominated[p] {
                self.nbr_x[p] *= f;
            }
        }
    }

    /// Part A of an iteration: threshold test and join.
    fn part_a(&mut self) -> Vec<Outgoing<ProtocolMsg>> {
        if !self.in_s {
            let threshold = self.weight as f64 / (1.0 + self.cfg.epsilon);
            if self.x_sum() >= threshold {
                self.in_s = true;
                self.dominated = true;
                self.announced = true; // Joined broadcast implies domination
                return vec![Outgoing::broadcast(ProtocolMsg::Joined)];
            }
        }
        Vec::new()
    }

    /// Part B of an iteration: digest joins, announce fresh domination.
    fn part_b(&mut self, inbox: Inbox<'_, ProtocolMsg>) -> Vec<Outgoing<ProtocolMsg>> {
        let mut heard_join = false;
        for (port, &msg) in inbox {
            if msg == ProtocolMsg::Joined {
                self.nbr_dominated[port] = true;
                heard_join = true;
            }
        }
        if heard_join && !self.dominated {
            self.dominated = true;
        }
        if self.dominated && !self.announced {
            self.announced = true;
            return vec![Outgoing::broadcast(ProtocolMsg::Dominated)];
        }
        Vec::new()
    }
}

impl NodeProgram for WeightedProgram {
    type Message = ProtocolMsg;
    type Output = NodeOutput;

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: Inbox<'_, ProtocolMsg>) -> Step<ProtocolMsg> {
        let rd = ctx.round;
        match rd {
            0 => {
                self.weight = ctx.weight;
                Step::continue_with(vec![Outgoing::broadcast(ProtocolMsg::Weight(self.weight))])
            }
            1 => {
                for (port, &msg) in inbox {
                    if let ProtocolMsg::Weight(w) = msg {
                        self.nbr_weight[port] = w;
                    }
                }
                self.tau = self
                    .nbr_weight
                    .iter()
                    .copied()
                    .chain(std::iter::once(self.weight))
                    .min()
                    .expect("nonempty");
                Step::continue_with(vec![Outgoing::broadcast(ProtocolMsg::Tau(self.tau))])
            }
            _ => {
                if rd == 2 {
                    // Initialize packing values and the schedule.
                    let dp1 = (ctx.globals.max_degree + 1) as f64;
                    self.x = self.tau as f64 / dp1;
                    for (port, &msg) in inbox {
                        if let ProtocolMsg::Tau(t) = msg {
                            self.nbr_x[port] = t as f64 / dp1;
                        }
                    }
                    let pcfg = PartialConfig::new(self.cfg.epsilon, self.cfg.lambda())
                        .expect("validated at run_weighted entry");
                    self.r = pcfg.iterations(ctx.globals.max_degree);
                }
                let completion_round = 2 + 2 * self.r;
                if rd < completion_round {
                    let i = (rd - 2) / 2;
                    if (rd - 2) % 2 == 0 {
                        // Part A of iteration i: first digest last
                        // iteration's Dominated events and apply the raise.
                        if i > 0 {
                            self.apply_dominated_events(inbox);
                            self.raise_undominated();
                        }
                        Step::continue_with(self.part_a())
                    } else {
                        Step::continue_with(self.part_b(inbox))
                    }
                } else if rd == completion_round {
                    // Final bookkeeping of iteration r−1, then elections.
                    if self.r > 0 {
                        self.apply_dominated_events(inbox);
                        self.raise_undominated();
                    }
                    if self.dominated {
                        return Step::idle();
                    }
                    match self.cheapest_dominator(ctx) {
                        None => {
                            self.in_s_prime = true;
                            Step::idle()
                        }
                        Some(port) => {
                            Step::continue_with(vec![Outgoing::to_port(port, ProtocolMsg::Elect)])
                        }
                    }
                } else {
                    // completion_round + 1: receive elections, halt.
                    if inbox.iter().any(|(_, &m)| m == ProtocolMsg::Elect) {
                        self.in_s_prime = true;
                    }
                    Step::halt()
                }
            }
        }
    }

    fn output(&self) -> NodeOutput {
        NodeOutput {
            in_ds: self.in_s || self.in_s_prime,
            x: self.x,
        }
    }
}

/// Runs Theorem 1.1 as a real message-passing computation and assembles the
/// global result plus the exact CONGEST telemetry.
///
/// # Errors
///
/// Propagates configuration validation and simulation errors.
pub fn run_weighted(
    g: &Graph,
    cfg: &Config,
    seed: u64,
    opts: &RunOptions,
) -> Result<(DsResult, Telemetry)> {
    run_weighted_with(g, cfg, seed, &RunConfig::from_options(opts))
}

/// Positional-parameter variant of [`run_weighted_with`].
///
/// # Errors
///
/// Propagates configuration validation and simulation errors.
#[deprecated(
    since = "0.1.0",
    note = "use run_weighted_with and the RunConfig builder"
)]
pub fn run_weighted_on(
    g: &Graph,
    cfg: &Config,
    seed: u64,
    opts: &RunOptions,
    threads: usize,
) -> Result<(DsResult, Telemetry)> {
    run_weighted_with(
        g,
        cfg,
        seed,
        &RunConfig::from_options(opts).threads(threads),
    )
}

/// Like [`run_weighted`], driven by a [`RunConfig`]: executed on
/// [`RunConfig::thread_count`] worker threads through [`run_parallel`]
/// (one thread falls back to the sequential [`run`]). Outputs and
/// telemetry are bit-identical at any thread count.
///
/// # Errors
///
/// Propagates configuration validation and simulation errors.
pub fn run_weighted_with(
    g: &Graph,
    cfg: &Config,
    seed: u64,
    run_cfg: &RunConfig,
) -> Result<(DsResult, Telemetry)> {
    let (opts, threads) = (run_cfg.options(), run_cfg.thread_count());
    // Validate before constructing node programs.
    PartialConfig::new(cfg.epsilon, cfg.lambda())?;
    let globals = Globals::new(g, seed).with_arboricity(cfg.alpha);
    let make = |v: NodeId, g: &Graph| WeightedProgram::new(*cfg, g.degree(v));
    // `run_parallel` itself falls back to the sequential runner for
    // `threads <= 1` or tiny graphs, so one call covers every case.
    let run_out = run_parallel(g, &globals, make, opts, threads)?;
    let in_ds: Vec<bool> = run_out.outputs.iter().map(|o| o.in_ds).collect();
    let x: Vec<f64> = run_out.outputs.iter().map(|o| o.x).collect();
    let iterations = PartialConfig::new(cfg.epsilon, cfg.lambda())?.iterations(g.max_degree()) + 1;
    Ok((
        DsResult::from_flags(g, in_ds, iterations, Some(PackingCertificate::new(x))),
        run_out.telemetry,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify, weighted};
    use arbodom_congest::MeterMode;
    use arbodom_graph::{generators, weights::WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn strict() -> RunOptions {
        RunOptions {
            meter: MeterMode::Strict,
            ..RunOptions::default()
        }
    }

    #[test]
    fn matches_centralized_exactly() {
        let mut rng = StdRng::seed_from_u64(151);
        for alpha in [1usize, 2, 4] {
            for model in [WeightModel::Unit, WeightModel::Uniform { lo: 1, hi: 50 }] {
                let g = generators::forest_union(150, alpha, &mut rng);
                let g = model.assign(&g, &mut rng);
                let cfg = Config::new(alpha, 0.3).unwrap();
                let central = weighted::solve(&g, &cfg).unwrap();
                let (dist, telemetry) = run_weighted(&g, &cfg, 0, &strict()).unwrap();
                assert_eq!(central.in_ds, dist.in_ds, "α={alpha} {model:?}");
                let cx = central.certificate.as_ref().unwrap().values();
                let dx = dist.certificate.as_ref().unwrap().values();
                assert_eq!(cx, dx, "packing values must be bit-identical");
                assert!(telemetry.is_congest_compliant());
            }
        }
    }

    #[test]
    fn round_count_matches_schedule() {
        let mut rng = StdRng::seed_from_u64(152);
        let g = generators::forest_union(100, 2, &mut rng);
        let cfg = Config::new(2, 0.3).unwrap();
        let r = PartialConfig::new(cfg.epsilon, cfg.lambda())
            .unwrap()
            .iterations(g.max_degree());
        let (_, telemetry) = run_weighted(&g, &cfg, 0, &strict()).unwrap();
        assert_eq!(telemetry.rounds, 2 + 2 * r + 2);
    }

    #[test]
    fn steady_state_messages_are_tiny() {
        let mut rng = StdRng::seed_from_u64(153);
        let g = generators::forest_union(200, 3, &mut rng);
        let g = WeightModel::Uniform { lo: 1, hi: 1000 }.assign(&g, &mut rng);
        let cfg = Config::new(3, 0.2).unwrap();
        let (_, telemetry) = run_weighted(&g, &cfg, 0, &strict()).unwrap();
        // The largest message is a setup Weight/Tau; events are 8 bits.
        assert!(telemetry.max_message_bits <= 8 + 8 * 10);
        assert!(telemetry.is_congest_compliant());
    }

    #[test]
    fn result_is_dominating_on_varied_graphs() {
        let mut rng = StdRng::seed_from_u64(154);
        let graphs = vec![
            generators::path(40),
            generators::star(60),
            generators::cycle(30),
            generators::grid2d(8, 9, false),
            generators::gnp(80, 0.08, &mut rng),
        ];
        for g in graphs {
            let cfg = Config::new(2, 0.4).unwrap();
            let (sol, _) = run_weighted(&g, &cfg, 1, &strict()).unwrap();
            assert!(verify::is_dominating_set(&g, &sol.in_ds));
        }
    }

    #[test]
    fn isolated_nodes_self_elect() {
        let g = arbodom_graph::Graph::from_edges(4, [(0, 1)]).unwrap();
        let cfg = Config::new(1, 0.5).unwrap();
        let (sol, _) = run_weighted(&g, &cfg, 0, &strict()).unwrap();
        assert!(verify::is_dominating_set(&g, &sol.in_ds));
        assert!(sol.in_ds[2] && sol.in_ds[3]);
    }
}
