//! CONGEST node program for Observation A.1 (one-round tree 3-approx).
//!
//! One communication round: every node broadcasts its degree; each node
//! then decides membership locally — non-leaves join, isolated nodes join,
//! and in a `K₂` component the smaller id joins (see [`crate::trees`] for
//! why the boundary cases matter).

use arbodom_congest::{
    run_parallel, Globals, Inbox, NodeCtx, NodeProgram, Outgoing, RunOptions, Step, Telemetry,
};
use arbodom_graph::Graph;

use super::msg::ProtocolMsg;
use super::RunConfig;
use crate::{DsResult, Result};

/// The Observation A.1 node program.
#[derive(Debug, Default)]
pub struct TreeProgram {
    in_ds: bool,
}

impl NodeProgram for TreeProgram {
    type Message = ProtocolMsg;
    type Output = bool;

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: Inbox<'_, ProtocolMsg>) -> Step<ProtocolMsg> {
        match ctx.round {
            0 => {
                let deg = ctx.degree() as u64;
                if deg == 0 {
                    self.in_ds = true;
                    return Step::halt();
                }
                if deg >= 2 {
                    self.in_ds = true;
                }
                // Leaves still need their neighbor's degree for the K₂ rule;
                // non-leaves broadcast so those leaves can decide.
                Step::continue_with(vec![Outgoing::broadcast(ProtocolMsg::Degree(deg))])
            }
            _ => {
                if ctx.degree() == 1 && !self.in_ds {
                    let nbr_deg = inbox
                        .iter()
                        .find_map(|(_, &m)| match m {
                            ProtocolMsg::Degree(d) => Some(d),
                            _ => None,
                        })
                        .expect("the unique neighbor always reports");
                    let nbr = ctx.neighbors[0];
                    self.in_ds = nbr_deg == 1 && ctx.id < nbr;
                }
                Step::halt()
            }
        }
    }

    fn output(&self) -> bool {
        self.in_ds
    }
}

/// Runs Observation A.1 as a real message-passing computation.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_trees(g: &Graph, opts: &RunOptions) -> Result<(DsResult, Telemetry)> {
    run_trees_with(g, &RunConfig::from_options(opts))
}

/// Positional-parameter variant of [`run_trees_with`].
///
/// # Errors
///
/// Propagates simulation errors.
#[deprecated(since = "0.1.0", note = "use run_trees_with and the RunConfig builder")]
pub fn run_trees_on(g: &Graph, opts: &RunOptions, threads: usize) -> Result<(DsResult, Telemetry)> {
    run_trees_with(g, &RunConfig::from_options(opts).threads(threads))
}

/// Like [`run_trees`], driven by a [`RunConfig`]: executed on
/// [`RunConfig::thread_count`] worker threads through [`run_parallel`]
/// (one thread falls back to the sequential [`run`]). Outputs and
/// telemetry are bit-identical at any thread count.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_trees_with(g: &Graph, run_cfg: &RunConfig) -> Result<(DsResult, Telemetry)> {
    let (opts, threads) = (run_cfg.options(), run_cfg.thread_count());
    let globals = Globals::new(g, 0).with_arboricity(1);
    let make = |_, _: &Graph| TreeProgram::default();
    // `run_parallel` itself falls back to the sequential runner for
    // `threads <= 1` or tiny graphs, so one call covers every case.
    let run_out = run_parallel(g, &globals, make, opts, threads)?;
    Ok((
        DsResult::from_flags(g, run_out.outputs, 1, None),
        run_out.telemetry,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{trees, verify};
    use arbodom_congest::MeterMode;
    use arbodom_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn strict() -> RunOptions {
        RunOptions {
            meter: MeterMode::Strict,
            ..RunOptions::default()
        }
    }

    #[test]
    fn matches_centralized_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(171);
        for n in [2usize, 3, 50, 500] {
            let g = generators::random_tree(n, &mut rng);
            let central = trees::solve(&g).unwrap();
            let (dist, telemetry) = run_trees(&g, &strict()).unwrap();
            assert_eq!(central.in_ds, dist.in_ds, "n={n}");
            assert!(telemetry.rounds <= 2, "one communication round");
            assert!(telemetry.is_congest_compliant());
        }
    }

    #[test]
    fn forest_with_isolated_and_k2() {
        let g = arbodom_graph::Graph::from_edges(6, [(0, 1), (2, 3), (3, 4)]).unwrap();
        let (sol, _) = run_trees(&g, &strict()).unwrap();
        assert!(verify::is_dominating_set(&g, &sol.in_ds));
        assert_eq!(sol.in_ds, trees::solve(&g).unwrap().in_ds);
    }
}
