//! Error type for the solver APIs.

use std::error::Error;
use std::fmt;

/// Errors produced by the dominating-set solvers.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration parameter is outside its documented domain.
    InvalidParameter {
        /// The parameter's name.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The CONGEST simulation failed.
    Simulation(String),
    /// A graph operation failed — a [`crate::repair`] delta conflicted
    /// with the maintained graph, or an endpoint was out of range.
    Graph(arbodom_graph::GraphError),
}

impl CoreError {
    pub(crate) fn param(name: &'static str, reason: impl Into<String>) -> Self {
        CoreError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            CoreError::Simulation(msg) => write!(f, "simulation failed: {msg}"),
            CoreError::Graph(e) => write!(f, "graph operation failed: {e}"),
        }
    }
}

impl Error for CoreError {}

impl From<arbodom_congest::SimError> for CoreError {
    fn from(e: arbodom_congest::SimError) -> Self {
        CoreError::Simulation(e.to_string())
    }
}

impl From<arbodom_graph::GraphError> for CoreError {
    fn from(e: arbodom_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parameter() {
        let e = CoreError::param("epsilon", "must be in (0, 1)");
        assert!(e.to_string().contains("epsilon"));
        assert!(e.to_string().contains("(0, 1)"));
    }
}
