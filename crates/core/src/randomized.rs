//! Theorem 1.2: randomized `(α + O(α/t))`-approximate weighted MDS in
//! `O(t·log Δ)` rounds.
//!
//! Composition of Lemma 4.1 and Lemma 4.6 with the parameter choice from
//! the paper's proof: `ε = 1/(4t)`, `λ = ε/(α+1)`, `γ = max(2, α^{1/(2t)})`.
//! The partial set then costs `w_S ≤ (α + α/t)·OPT` and the extension
//! `E[w_{S′}] = O(α/t)·OPT`, for `t ≤ α/log α` — the paper's
//! first-order-optimal regime (NP-hard to beat `α − 1 − ε` [BU17]).
//!
//! Setting `t = α/log α` gives `(α + O(log α))`-approximation in
//! `O(α·log Δ)` rounds.

use arbodom_graph::Graph;

use crate::extend::{extend, ExtendConfig};
use crate::partial::{partial_dominating_set, PartialConfig};
use crate::{CoreError, DsResult, PackingCertificate, Result};

/// Parameters for Theorem 1.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Config {
    /// Arboricity bound α ≥ 1 known to all nodes.
    pub alpha: usize,
    /// Trade-off parameter `t ≥ 1`: approximation `α + O(α/t)`, round
    /// complexity `O(t log Δ)`. The theorem's stated regime is
    /// `t ≤ α/log α`; larger values are accepted (the bound is just no
    /// longer interesting).
    pub t: usize,
    /// Seed for the sampling randomness of Lemma 4.6.
    pub seed: u64,
}

impl Config {
    /// Validates `alpha ≥ 1` and `t ≥ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] outside those ranges.
    pub fn new(alpha: usize, t: usize, seed: u64) -> Result<Self> {
        if alpha == 0 {
            return Err(CoreError::param("alpha", "must be at least 1"));
        }
        if t == 0 {
            return Err(CoreError::param("t", "must be at least 1"));
        }
        Ok(Config { alpha, t, seed })
    }

    /// `ε = 1/(4t)`.
    pub fn epsilon(&self) -> f64 {
        1.0 / (4.0 * self.t as f64)
    }

    /// `λ = ε/(α+1)`.
    pub fn lambda(&self) -> f64 {
        self.epsilon() / (self.alpha as f64 + 1.0)
    }

    /// `γ = max(2, α^{1/(2t)})`.
    pub fn gamma(&self) -> f64 {
        2.0f64.max((self.alpha as f64).powf(1.0 / (2.0 * self.t as f64)))
    }

    /// The expected approximation factor `α(1 + 1/t) + c·α/t` with the
    /// paper's constants folded into `guarantee ≈ α + O(α/t)`; exposed for
    /// the experiment tables as the *proof-side* value
    /// `α(1+4ε) + γ(γ+1)⌈log_γ λ⁻¹⌉`.
    pub fn guarantee(&self, max_degree: usize) -> f64 {
        let alpha = self.alpha as f64;
        let _ = max_degree;
        let partial = alpha * (1.0 + 4.0 * self.epsilon());
        let g = self.gamma();
        let ext = g * (g + 1.0) * ((1.0 / self.lambda()).ln() / g.ln()).ceil();
        partial + ext
    }
}

/// Runs Theorem 1.2.
///
/// # Errors
///
/// Propagates parameter validation errors.
pub fn solve(g: &Graph, cfg: &Config) -> Result<DsResult> {
    let pcfg = PartialConfig::new(cfg.epsilon(), cfg.lambda())?;
    let part = partial_dominating_set(g, &pcfg);
    let ecfg = ExtendConfig::new(cfg.lambda(), cfg.gamma(), cfg.seed)?;
    let ext = extend(g, &part.dominated, &part.in_s, &part.x, &ecfg);
    let mut in_ds = part.in_s;
    for (flag, &added) in in_ds.iter_mut().zip(&ext.in_s_prime) {
        *flag = *flag || added;
    }
    Ok(DsResult::from_flags(
        g,
        in_ds,
        part.iterations + ext.iterations,
        Some(PackingCertificate::new(part.x)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use arbodom_graph::{generators, weights::WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation_and_parameters() {
        assert!(Config::new(0, 1, 0).is_err());
        assert!(Config::new(4, 0, 0).is_err());
        let c = Config::new(8, 2, 0).unwrap();
        assert!((c.epsilon() - 0.125).abs() < 1e-12);
        assert!((c.lambda() - 0.125 / 9.0).abs() < 1e-12);
        assert!((c.gamma() - 2.0f64.max(8f64.powf(0.25))).abs() < 1e-12);
    }

    #[test]
    fn always_dominating() {
        let mut rng = StdRng::seed_from_u64(101);
        for alpha in [1usize, 2, 4, 8] {
            for t in [1usize, 2, 3] {
                let g = generators::forest_union(250, alpha, &mut rng);
                let g = WeightModel::Uniform { lo: 1, hi: 30 }.assign(&g, &mut rng);
                let cfg = Config::new(alpha, t, 42).unwrap();
                let sol = solve(&g, &cfg).unwrap();
                assert!(
                    verify::is_dominating_set(&g, &sol.in_ds),
                    "α={alpha}, t={t}"
                );
                let cert = sol.certificate.as_ref().unwrap();
                assert!(cert.is_feasible(&g, 1e-9));
            }
        }
    }

    #[test]
    fn rounds_grow_with_t() {
        let mut rng = StdRng::seed_from_u64(102);
        let alpha = 8;
        let g = generators::forest_union(500, alpha, &mut rng);
        let i1 = solve(&g, &Config::new(alpha, 1, 7).unwrap())
            .unwrap()
            .iterations;
        let i4 = solve(&g, &Config::new(alpha, 4, 7).unwrap())
            .unwrap()
            .iterations;
        assert!(
            i4 > i1,
            "more phases at larger t: t=1 → {i1}, t=4 → {i4} iterations"
        );
    }

    #[test]
    fn average_ratio_beats_deterministic_guarantee_at_large_t() {
        // The whole point of Thm 1.2: for large t the measured ratio
        // certificate should comfortably undercut (2α+1).
        let mut rng = StdRng::seed_from_u64(103);
        let alpha = 6usize;
        let g = generators::forest_union(600, alpha, &mut rng);
        let mut ratios = Vec::new();
        for seed in 0..5 {
            let cfg = Config::new(alpha, 3, seed).unwrap();
            let sol = solve(&g, &cfg).unwrap();
            ratios.push(sol.certified_ratio().unwrap());
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(
            avg < (2 * alpha + 1) as f64,
            "expected randomized avg ratio {avg} below deterministic bound {}",
            2 * alpha + 1
        );
    }

    #[test]
    fn reproducible_with_seed() {
        let mut rng = StdRng::seed_from_u64(104);
        let g = generators::gnp(120, 0.06, &mut rng);
        let cfg = Config::new(3, 2, 11).unwrap();
        let a = solve(&g, &cfg).unwrap();
        let b = solve(&g, &cfg).unwrap();
        assert_eq!(a.in_ds, b.in_ds);
    }

    #[test]
    fn alpha_one_works() {
        let mut rng = StdRng::seed_from_u64(105);
        let g = generators::random_tree(200, &mut rng);
        let cfg = Config::new(1, 1, 3).unwrap();
        let sol = solve(&g, &cfg).unwrap();
        assert!(verify::is_dominating_set(&g, &sol.in_ds));
    }
}
