//! Lemma 4.1: the primal-dual partial dominating set.
//!
//! Every node carries a packing value `x_v`, initialized to `τ_v/(Δ+1)`
//! (where `τ_v = min_{u∈N⁺(v)} w_u`). For `r = Θ(log(λ(Δ+1))/ε)`
//! iterations, all nodes simultaneously:
//!
//! 1. compute `X_u = Σ_{v∈N⁺(u)} x_v`;
//! 2. join the partial set `S` if `X_u ≥ w_u/(1+ε)`;
//! 3. multiply `x_v` by `(1+ε)` if `v` is still undominated.
//!
//! Guarantees (Lemma 4.1): the packing stays feasible throughout
//! (Observation 4.2); `w_S ≤ α(1/(1+ε) − λ(α+1))⁻¹ · Σ_{v∈N⁺(S)} x_v`
//! (property (a)); and every undominated node ends with `x_v > λτ_v`
//! (property (b), Observation 4.3).
//!
//! The per-iteration update order matters and is replicated exactly by the
//! CONGEST program in [`crate::distributed`]: joins are decided from the
//! packing values at the *start* of the iteration, domination is then
//! updated, and only still-undominated nodes raise `x`.

use arbodom_graph::Graph;

use crate::{CoreError, Result};

/// Parameters of Lemma 4.1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartialConfig {
    /// The slack `ε ∈ (0, 1)` of the join threshold.
    pub epsilon: f64,
    /// The packing floor `λ > 0` demanded of undominated nodes. Lemma 4.1
    /// additionally requires `λ < 1/((α+1)(1+ε))` for property (a) to be
    /// non-vacuous, which the theorem-level wrappers enforce.
    pub lambda: f64,
}

impl PartialConfig {
    /// Validates `ε ∈ (0, 1)` and `λ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] outside those ranges.
    pub fn new(epsilon: f64, lambda: f64) -> Result<Self> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CoreError::param("epsilon", "must be in (0, 1)"));
        }
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(CoreError::param("lambda", "must be positive and finite"));
        }
        Ok(PartialConfig { epsilon, lambda })
    }

    /// The iteration count `r`: the integer with
    /// `(1+ε)^(r−1)/(Δ+1) ≤ λ < (1+ε)^r/(Δ+1)`, or 0 when `λ < 1/(Δ+1)`
    /// (in which case the lemma is satisfied by `S = ∅`).
    pub fn iterations(&self, max_degree: usize) -> usize {
        let dp1 = (max_degree + 1) as f64;
        if self.lambda < 1.0 / dp1 {
            return 0;
        }
        // r − 1 = ⌊log_{1+ε}(λ(Δ+1))⌋ in exact arithmetic; guard the f64
        // edge where λ(Δ+1) is an exact power of (1+ε).
        let target = self.lambda * dp1;
        let mut r = (target.ln() / self.epsilon.ln_1p()).floor() as usize + 1;
        // Enforce the defining inequalities numerically.
        let pow = |k: usize| (1.0 + self.epsilon).powi(k as i32);
        while r > 1 && pow(r - 1) > target {
            r -= 1;
        }
        while pow(r) <= target {
            r += 1;
        }
        r
    }
}

/// The outcome of Lemma 4.1.
#[derive(Clone, Debug)]
pub struct PartialOutcome {
    /// Membership in the partial dominating set `S`.
    pub in_s: Vec<bool>,
    /// `N⁺[S]` flags: which nodes are dominated by `S`.
    pub dominated: Vec<bool>,
    /// Final packing values; feasible (Observation 4.2), with
    /// `x_v > λτ_v` for undominated `v` (Observation 4.3).
    pub x: Vec<f64>,
    /// Iterations executed (`r`).
    pub iterations: usize,
}

impl PartialOutcome {
    /// Total weight of `S`.
    pub fn s_weight(&self, g: &Graph) -> u64 {
        g.nodes()
            .filter(|v| self.in_s[v.index()])
            .map(|v| g.weight(v))
            .sum()
    }

    /// Number of nodes not dominated by `S`.
    pub fn undominated_count(&self) -> usize {
        self.dominated.iter().filter(|&&d| !d).count()
    }
}

/// Runs Lemma 4.1 on `g`.
///
/// This is the centralized, round-faithful simulation: it performs exactly
/// the synchronous iterations of the distributed algorithm (each is `O(1)`
/// CONGEST rounds) and is deterministic.
pub fn partial_dominating_set(g: &Graph, cfg: &PartialConfig) -> PartialOutcome {
    partial_dominating_set_iterations(g, cfg.epsilon, cfg.iterations(g.max_degree()))
}

/// Runs the Lemma 4.1 iteration for an explicit number of rounds instead
/// of the λ-derived count.
///
/// This is the knob for the *locality* experiments (Theorem 1.4): an
/// `r`-round algorithm is the paper's engine truncated at `r` iterations
/// plus the take-all-undominated completion; ratios must degrade as `r`
/// shrinks on the lower-bound construction.
pub fn partial_dominating_set_iterations(g: &Graph, epsilon: f64, r: usize) -> PartialOutcome {
    let n = g.n();
    let delta_p1 = (g.max_degree() + 1) as f64;
    let one_plus_eps = 1.0 + epsilon;
    let tau: Vec<u64> = g.nodes().map(|v| g.tau(v)).collect();
    let mut x: Vec<f64> = tau.iter().map(|&t| t as f64 / delta_p1).collect();
    let mut in_s = vec![false; n];
    let mut dominated = vec![false; n];
    for _ in 0..r {
        // Step 1: X_u from the current (start-of-iteration) packing.
        // Step 2: simultaneous joins.
        let mut joined: Vec<u32> = Vec::new();
        for u in g.nodes() {
            if in_s[u.index()] {
                continue;
            }
            let xu: f64 = g.closed_neighbors(u).map(|v| x[v.index()]).sum();
            if xu >= g.weight(u) as f64 / one_plus_eps {
                joined.push(u.get());
            }
        }
        for &u in &joined {
            let u = arbodom_graph::NodeId::new(u);
            in_s[u.index()] = true;
            dominated[u.index()] = true;
            for &w in g.neighbors(u) {
                dominated[w.index()] = true;
            }
        }
        // Step 3: raise undominated packing values.
        for v in 0..n {
            if !dominated[v] {
                x[v] *= one_plus_eps;
            }
        }
    }
    PartialOutcome {
        in_s,
        dominated,
        x,
        iterations: r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::PackingCertificate;
    use arbodom_graph::{generators, weights::WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn theorem11_lambda(alpha: usize, eps: f64) -> f64 {
        1.0 / ((2 * alpha + 1) as f64 * (1.0 + eps))
    }

    #[test]
    fn config_validation() {
        assert!(PartialConfig::new(0.0, 0.1).is_err());
        assert!(PartialConfig::new(1.0, 0.1).is_err());
        assert!(PartialConfig::new(0.5, 0.0).is_err());
        assert!(PartialConfig::new(0.5, f64::INFINITY).is_err());
        assert!(PartialConfig::new(0.5, 0.1).is_ok());
    }

    #[test]
    fn iteration_count_satisfies_definition() {
        for &(delta, eps, lambda) in &[
            (10usize, 0.3f64, 0.2f64),
            (100, 0.1, 0.05),
            (1000, 0.5, 0.001),
            (7, 0.9, 0.9),
        ] {
            let cfg = PartialConfig::new(eps, lambda).unwrap();
            let r = cfg.iterations(delta);
            let dp1 = (delta + 1) as f64;
            if lambda < 1.0 / dp1 {
                assert_eq!(r, 0);
                continue;
            }
            assert!(r >= 1, "r must be ≥ 1 when λ ≥ 1/(Δ+1)");
            let p = 1.0 + eps;
            assert!(
                p.powi(r as i32 - 1) / dp1 <= lambda + 1e-12,
                "lower side fails: Δ={delta} ε={eps} λ={lambda} r={r}"
            );
            assert!(
                lambda < p.powi(r as i32) / dp1 + 1e-12,
                "upper side fails: Δ={delta} ε={eps} λ={lambda} r={r}"
            );
        }
    }

    #[test]
    fn packing_stays_feasible_observation_4_2() {
        let mut rng = StdRng::seed_from_u64(61);
        for alpha in [1usize, 2, 4] {
            let g = generators::forest_union(200, alpha, &mut rng);
            let g = WeightModel::Uniform { lo: 1, hi: 50 }.assign(&g, &mut rng);
            let cfg = PartialConfig::new(0.25, theorem11_lambda(alpha, 0.25)).unwrap();
            let out = partial_dominating_set(&g, &cfg);
            let cert = PackingCertificate::new(out.x.clone());
            assert!(
                cert.is_feasible(&g, 1e-9),
                "violation {} for α={alpha}",
                cert.max_violation(&g)
            );
        }
    }

    #[test]
    fn property_b_undominated_have_large_packing() {
        let mut rng = StdRng::seed_from_u64(62);
        let g = generators::forest_union(300, 3, &mut rng);
        let g = WeightModel::Exponential { max_exp: 8 }.assign(&g, &mut rng);
        let eps = 0.2;
        let lambda = theorem11_lambda(3, eps);
        let cfg = PartialConfig::new(eps, lambda).unwrap();
        let out = partial_dominating_set(&g, &cfg);
        for v in g.nodes() {
            if !out.dominated[v.index()] {
                let tau = g.tau(v) as f64;
                assert!(
                    out.x[v.index()] >= lambda * tau * (1.0 - 1e-12),
                    "undominated {v} has x = {} < λτ = {}",
                    out.x[v.index()],
                    lambda * tau
                );
            } else {
                // Dominated nodes were multiplied at most r−1 times.
                let tau = g.tau(v) as f64;
                assert!(
                    out.x[v.index()] <= lambda * tau * (1.0 + 1e-9),
                    "dominated {v} has x = {} > λτ = {}",
                    out.x[v.index()],
                    lambda * tau
                );
            }
        }
    }

    #[test]
    fn property_a_weight_bound() {
        let mut rng = StdRng::seed_from_u64(63);
        for alpha in [2usize, 4] {
            let g = generators::forest_union(400, alpha, &mut rng);
            let g = WeightModel::Uniform { lo: 1, hi: 20 }.assign(&g, &mut rng);
            let eps = 0.3;
            let lambda = theorem11_lambda(alpha, eps);
            let cfg = PartialConfig::new(eps, lambda).unwrap();
            let out = partial_dominating_set(&g, &cfg);
            let af = alpha as f64;
            let coeff = af / (1.0 / (1.0 + eps) - lambda * (af + 1.0));
            let dominated_x: f64 = g
                .nodes()
                .filter(|v| out.dominated[v.index()])
                .map(|v| out.x[v.index()])
                .sum();
            assert!(
                out.s_weight(&g) as f64 <= coeff * dominated_x + 1e-6,
                "property (a) violated for α={alpha}: wS={} bound={}",
                out.s_weight(&g),
                coeff * dominated_x
            );
        }
    }

    #[test]
    fn lambda_below_floor_returns_empty() {
        let g = generators::star(100); // Δ = 99
        let cfg = PartialConfig::new(0.5, 1.0 / 500.0).unwrap();
        let out = partial_dominating_set(&g, &cfg);
        assert_eq!(out.iterations, 0);
        assert!(out.in_s.iter().all(|&b| !b));
        assert_eq!(out.undominated_count(), 100);
    }

    #[test]
    fn complete_graph_selects_quickly() {
        let g = generators::complete(20);
        // K20: Δ = 19; with α = 7, λ = 1/(15·1.2) = 1/18 ≥ 1/20, so r ≥ 1.
        // Every X_v starts at 20/20 = 1 ≥ 1/(1+ε) ⇒ everyone joins in
        // iteration 1 and everyone is dominated.
        let cfg = PartialConfig::new(0.2, theorem11_lambda(7, 0.2)).unwrap();
        let out = partial_dominating_set(&g, &cfg);
        assert!(out.iterations >= 1);
        assert_eq!(out.undominated_count(), 0);
        assert!(out.in_s.iter().all(|&b| b));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = arbodom_graph::Graph::from_edges(0, []).unwrap();
        let cfg = PartialConfig::new(0.2, 0.3).unwrap();
        let out = partial_dominating_set(&g, &cfg);
        assert!(out.in_s.is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let mut rng = StdRng::seed_from_u64(64);
        let g = generators::gnp(150, 0.05, &mut rng);
        let cfg = PartialConfig::new(0.3, 0.05).unwrap();
        let a = partial_dominating_set(&g, &cfg);
        let b = partial_dominating_set(&g, &cfg);
        assert_eq!(a.in_s, b.in_s);
        assert_eq!(a.x, b.x);
    }
}
