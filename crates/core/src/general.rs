//! Theorem 1.3: randomized weighted MDS on **general** graphs with expected
//! approximation `Δ^{1/k}(Δ^{1/k}+1)(k+1) = O(k·Δ^{2/k})` in `O(k²)` rounds.
//!
//! Obtained from Lemma 4.6 alone: take `S = ∅`, the initial feasible
//! packing `x_v = τ_v/(Δ+1)`, `λ = 1/(Δ+1)` (which trivially satisfies
//! property (b)), and `γ = Δ^{1/k}`. This improves the classic
//! Kuhn–Wattenhofer/KMW bound `O(k·Δ^{2/k}·log Δ)` by a `log Δ` factor and
//! doubles as this repository's general-graph baseline.

use arbodom_graph::Graph;

use crate::extend::{extend, ExtendConfig};
use crate::{CoreError, DsResult, PackingCertificate, Result};

/// Parameters for Theorem 1.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Config {
    /// Trade-off parameter `k ≥ 1`: approximation `O(k·Δ^{2/k})` in
    /// `O(k²)` rounds.
    pub k: usize,
    /// Seed for the sampling randomness.
    pub seed: u64,
}

impl Config {
    /// Validates `k ≥ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for `k == 0`.
    pub fn new(k: usize, seed: u64) -> Result<Self> {
        if k == 0 {
            return Err(CoreError::param("k", "must be at least 1"));
        }
        Ok(Config { k, seed })
    }

    /// `γ = Δ^{1/k}`, clamped to at least 1.3 so the phase arithmetic stays
    /// finite when `k` exceeds `log Δ` (larger `k` than that buys nothing;
    /// the clamp is documented behavior, not part of the paper).
    pub fn gamma(&self, max_degree: usize) -> f64 {
        ((max_degree.max(1)) as f64)
            .powf(1.0 / self.k as f64)
            .max(1.3)
    }

    /// The expected approximation factor `Δ^{1/k}(Δ^{1/k}+1)(k+1)`.
    pub fn guarantee(&self, max_degree: usize) -> f64 {
        let d = (max_degree.max(1)) as f64;
        let g = d.powf(1.0 / self.k as f64);
        g * (g + 1.0) * (self.k as f64 + 1.0)
    }
}

/// Runs Theorem 1.3 on a (weighted) general graph.
///
/// # Errors
///
/// Propagates parameter validation errors.
pub fn solve(g: &Graph, cfg: &Config) -> Result<DsResult> {
    let n = g.n();
    if g.m() == 0 {
        // Every isolated node must dominate itself; the packing x_v = w_v
        // is feasible and certifies ratio exactly 1.
        let x: Vec<f64> = g.nodes().map(|v| g.weight(v) as f64).collect();
        return Ok(DsResult::from_flags(
            g,
            vec![true; n],
            0,
            Some(PackingCertificate::new(x)),
        ));
    }
    let delta_p1 = (g.max_degree() + 1) as f64;
    let x0: Vec<f64> = g.nodes().map(|v| g.tau(v) as f64 / delta_p1).collect();
    let ecfg = ExtendConfig::new(1.0 / delta_p1, cfg.gamma(g.max_degree()), cfg.seed)?;
    let ext = extend(g, &vec![false; n], &vec![false; n], &x0, &ecfg);
    Ok(DsResult::from_flags(
        g,
        ext.in_s_prime,
        ext.iterations,
        Some(PackingCertificate::new(x0)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use arbodom_graph::{generators, weights::WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation() {
        assert!(Config::new(0, 0).is_err());
        assert!(Config::new(1, 0).is_ok());
        let c = Config::new(2, 0).unwrap();
        assert!((c.gamma(255) - (255f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn dominates_on_dense_random_graphs() {
        let mut rng = StdRng::seed_from_u64(111);
        for k in [1usize, 2, 3, 4] {
            let g = generators::gnp(300, 0.1, &mut rng);
            let g = WeightModel::Uniform { lo: 1, hi: 9 }.assign(&g, &mut rng);
            let cfg = Config::new(k, 5).unwrap();
            let sol = solve(&g, &cfg).unwrap();
            assert!(verify::is_dominating_set(&g, &sol.in_ds), "k={k}");
            let cert = sol.certificate.as_ref().unwrap();
            assert!(cert.is_feasible(&g, 1e-9));
        }
    }

    #[test]
    fn iteration_count_quadratic_in_k() {
        let mut rng = StdRng::seed_from_u64(112);
        let g = generators::gnp(400, 0.08, &mut rng);
        let i1 = solve(&g, &Config::new(1, 1).unwrap()).unwrap().iterations;
        let i4 = solve(&g, &Config::new(4, 1).unwrap()).unwrap().iterations;
        // t·r ≈ k·(k+1): strictly increasing in k.
        assert!(i4 > i1, "k=1 → {i1}, k=4 → {i4}");
    }

    #[test]
    fn edgeless_graph_exact() {
        let g = arbodom_graph::Graph::from_edges(6, [])
            .unwrap()
            .with_weights(vec![3, 1, 4, 1, 5, 9])
            .unwrap();
        let sol = solve(&g, &Config::new(2, 0).unwrap()).unwrap();
        assert_eq!(sol.size, 6);
        assert!((sol.certified_ratio().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_certificate_reasonable_on_star() {
        // OPT(star) = 1 (the hub); Thm 1.3 with k=1 has guarantee
        // Δ(Δ+1)·2 but in practice lands far below.
        let g = generators::star(100);
        let cfg = Config::new(2, 3).unwrap();
        let sol = solve(&g, &cfg).unwrap();
        assert!(verify::is_dominating_set(&g, &sol.in_ds));
        assert!(
            (sol.weight as f64) <= cfg.guarantee(g.max_degree()),
            "weight {} above theorem bound {}",
            sol.weight,
            cfg.guarantee(g.max_degree())
        );
    }

    #[test]
    fn reproducible() {
        let mut rng = StdRng::seed_from_u64(113);
        let g = generators::gnp(150, 0.07, &mut rng);
        let a = solve(&g, &Config::new(3, 21).unwrap()).unwrap();
        let b = solve(&g, &Config::new(3, 21).unwrap()).unwrap();
        assert_eq!(a.in_ds, b.in_ds);
    }
}
