//! The common output type of all solvers.

use arbodom_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

use crate::PackingCertificate;

/// A dominating set together with the evidence the algorithm produced.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DsResult {
    /// Membership flags, indexed by node id.
    pub in_ds: Vec<bool>,
    /// Total weight of the set.
    pub weight: u64,
    /// Number of nodes in the set.
    pub size: usize,
    /// Algorithm-level iterations executed; each costs `O(1)` CONGEST
    /// rounds, so this is the paper's round-complexity measure up to a
    /// constant. (The bit-faithful programs in [`crate::distributed`]
    /// report exact simulated rounds via telemetry.)
    pub iterations: usize,
    /// Feasible packing certificate, when the algorithm is primal-dual:
    /// its [`PackingCertificate::lower_bound`] is ≤ OPT by Lemma 2.1.
    pub certificate: Option<PackingCertificate>,
}

impl DsResult {
    /// Assembles a result from membership flags.
    pub fn from_flags(
        g: &Graph,
        in_ds: Vec<bool>,
        iterations: usize,
        certificate: Option<PackingCertificate>,
    ) -> Self {
        assert_eq!(in_ds.len(), g.n(), "flag vector must cover all nodes");
        let size = in_ds.iter().filter(|&&b| b).count();
        let weight = g
            .nodes()
            .filter(|v| in_ds[v.index()])
            .map(|v| g.weight(v))
            .sum();
        DsResult {
            in_ds,
            weight,
            size,
            iterations,
            certificate,
        }
    }

    /// The nodes in the dominating set, in id order.
    pub fn members(&self) -> Vec<NodeId> {
        self.in_ds
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Certified upper bound on the approximation ratio:
    /// `weight / certificate.lower_bound()`. `None` when the algorithm
    /// produced no certificate or the bound is degenerate.
    pub fn certified_ratio(&self) -> Option<f64> {
        let lb = self.certificate.as_ref()?.lower_bound();
        (lb > 0.0).then(|| self.weight as f64 / lb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbodom_graph::generators;

    #[test]
    fn from_flags_computes_weight_and_size() {
        let g = generators::path(4).with_weights(vec![2, 3, 5, 7]).unwrap();
        let r = DsResult::from_flags(&g, vec![true, false, true, false], 3, None);
        assert_eq!(r.size, 2);
        assert_eq!(r.weight, 7);
        assert_eq!(r.iterations, 3);
        assert_eq!(r.members(), vec![NodeId::new(0), NodeId::new(2)]);
        assert_eq!(r.certified_ratio(), None);
    }

    #[test]
    fn certified_ratio_uses_lower_bound() {
        let g = generators::path(2);
        let cert = PackingCertificate::new(vec![0.5, 0.5]);
        let r = DsResult::from_flags(&g, vec![true, false], 1, Some(cert));
        assert!((r.certified_ratio().unwrap() - 1.0).abs() < 1e-12);
    }
}
