//! Theorem 3.1: deterministic `(2α+1)(1+ε)`-approximate MDS on unweighted
//! graphs in `O(log(Δ/α)/ε)` rounds.
//!
//! Section 3 of the paper: run the primal-dual partial dominating set with
//! threshold floor `λ = 1/((2α+1)(1+ε))`, then add **every** undominated
//! node to the set. Claim 3.3 charges both parts to the packing:
//! `|S| ≤ (2α+1)(1+ε)·Σ_{v∈N⁺(S)} x_v` and `|T| ≤ (2α+1)(1+ε)·Σ_{v∈T} x_v`,
//! so `|S∪T| ≤ (2α+1)(1+ε)·OPT` by Lemma 2.1.

use arbodom_graph::Graph;

use crate::partial::{partial_dominating_set, PartialConfig};
use crate::{CoreError, DsResult, PackingCertificate, Result};

/// Parameters for Theorem 3.1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Config {
    /// Arboricity bound α ≥ 1 known to all nodes.
    pub alpha: usize,
    /// Approximation slack ε ∈ (0, 1).
    pub epsilon: f64,
}

impl Config {
    /// Validates `alpha ≥ 1` and `ε ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] outside those ranges.
    pub fn new(alpha: usize, epsilon: f64) -> Result<Self> {
        if alpha == 0 {
            return Err(CoreError::param("alpha", "must be at least 1"));
        }
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CoreError::param("epsilon", "must be in (0, 1)"));
        }
        Ok(Config { alpha, epsilon })
    }

    /// The threshold floor `λ = 1/((2α+1)(1+ε))`.
    pub fn lambda(&self) -> f64 {
        1.0 / ((2 * self.alpha + 1) as f64 * (1.0 + self.epsilon))
    }

    /// The approximation guarantee `(2α+1)(1+ε)`.
    pub fn guarantee(&self) -> f64 {
        (2 * self.alpha + 1) as f64 * (1.0 + self.epsilon)
    }
}

/// Runs Theorem 3.1 on an unweighted graph.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `g` is not unit-weighted
/// (use [`crate::weighted::solve`] for the weighted problem).
pub fn solve(g: &Graph, cfg: &Config) -> Result<DsResult> {
    if !g.is_unit_weighted() {
        return Err(CoreError::param(
            "graph",
            "Theorem 3.1 requires unit weights; use weighted::solve",
        ));
    }
    let pcfg = PartialConfig::new(cfg.epsilon, cfg.lambda())?;
    let out = partial_dominating_set(g, &pcfg);
    let mut in_ds = out.in_s;
    // T = undominated nodes, added wholesale (Claim 3.3).
    for (flag, &dominated) in in_ds.iter_mut().zip(&out.dominated) {
        if !dominated {
            *flag = true;
        }
    }
    Ok(DsResult::from_flags(
        g,
        in_ds,
        out.iterations + 1,
        Some(PackingCertificate::new(out.x)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use arbodom_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation() {
        assert!(Config::new(0, 0.5).is_err());
        assert!(Config::new(1, 0.0).is_err());
        assert!(Config::new(1, 1.0).is_err());
        assert!(Config::new(3, 0.2).is_ok());
        let c = Config::new(2, 0.5).unwrap();
        assert!((c.guarantee() - 7.5).abs() < 1e-12);
        assert!((c.lambda() - 1.0 / 7.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_weighted_graphs() {
        let g = generators::path(3).with_weights(vec![1, 2, 1]).unwrap();
        assert!(solve(&g, &Config::new(1, 0.5).unwrap()).is_err());
    }

    #[test]
    fn always_dominating_and_within_bound() {
        let mut rng = StdRng::seed_from_u64(71);
        for alpha in [1usize, 2, 4, 8] {
            for eps in [0.1, 0.5, 0.9] {
                let g = generators::forest_union(250, alpha, &mut rng);
                let cfg = Config::new(alpha, eps).unwrap();
                let sol = solve(&g, &cfg).unwrap();
                assert!(verify::is_dominating_set(&g, &sol.in_ds));
                let cert = sol.certificate.as_ref().unwrap();
                assert!(cert.is_feasible(&g, 1e-9));
                assert!(
                    sol.weight as f64 <= cfg.guarantee() * cert.lower_bound() * (1.0 + 1e-9),
                    "α={alpha} ε={eps}: weight {} > bound × LB {}",
                    sol.weight,
                    cfg.guarantee() * cert.lower_bound()
                );
            }
        }
    }

    #[test]
    fn round_complexity_scales_with_log_delta_over_alpha() {
        // iterations ≈ log_{1+ε}((Δ+1)/((2α+1)(1+ε))), Theorem 3.1's bound.
        let mut rng = StdRng::seed_from_u64(72);
        let eps = 0.5f64;
        let alpha = 2usize;
        let g = generators::preferential_attachment(2000, alpha, &mut rng);
        let cfg = Config::new(alpha, eps).unwrap();
        let sol = solve(&g, &cfg).unwrap();
        let delta = g.max_degree() as f64;
        // r = ⌊log_{1+ε}(λ(Δ+1))⌋ + 1, plus one completion iteration.
        let theory = ((delta + 1.0) * cfg.lambda()).ln() / eps.ln_1p() + 3.0;
        assert!(
            (sol.iterations as f64) <= theory.max(3.0) * 1.5,
            "iterations {} far above theory {theory}",
            sol.iterations
        );
    }

    #[test]
    fn handles_edgeless_graph() {
        let g = arbodom_graph::Graph::from_edges(5, []).unwrap();
        let sol = solve(&g, &Config::new(1, 0.3).unwrap()).unwrap();
        assert!(verify::is_dominating_set(&g, &sol.in_ds));
        assert_eq!(sol.size, 5); // every isolated node must self-dominate
    }

    #[test]
    fn star_selects_near_optimal() {
        let g = generators::star(200);
        let sol = solve(&g, &Config::new(1, 0.2).unwrap()).unwrap();
        assert!(verify::is_dominating_set(&g, &sol.in_ds));
        // OPT = 1; the bound allows 3·1.2 = 3.6, so at most 3 nodes.
        assert!(sol.size <= 3, "star solution too large: {}", sol.size);
    }

    #[test]
    fn cycle_within_bound_vs_exact() {
        // OPT(C_n) = ⌈n/3⌉; α(C_n) = 2 ⇒ bound 5(1+ε).
        let n = 30;
        let g = generators::cycle(n);
        let cfg = Config::new(2, 0.1).unwrap();
        let sol = solve(&g, &cfg).unwrap();
        assert!(verify::is_dominating_set(&g, &sol.in_ds));
        let opt = n.div_ceil(3);
        assert!(
            (sol.size as f64) <= cfg.guarantee() * opt as f64,
            "size {} vs bound {}",
            sol.size,
            cfg.guarantee() * opt as f64
        );
    }
}
