//! Incremental dominating-set repair under edge churn.
//!
//! The paper solves a *frozen* instance; this module keeps a solved
//! instance valid while the graph mutates. The key locality fact: after
//! applying a [`GraphDelta`], only the **endpoints of deleted edges** can
//! lose domination (an insertion only grows closed neighborhoods, and a
//! set member is never removed), so validity is restored by re-running
//! the paper's completion step — elect `tau_argmin`, the cheapest
//! `(weight, id)` node of the closed neighborhood, exactly the rule of
//! Theorem 1.1's completion — around the touched vertices only. That is
//! `O(Σ deg)` over the touched set, against `O(n + m)` plus simulation
//! rounds for a full re-solve.
//!
//! Repair alone only *adds* nodes, so quality would decay monotonically
//! between re-solves. Each batch therefore follows the addition step with
//! a local **shrink pass** ([`shrink_step`]): dominating-set members in
//! the closed neighborhoods of the batch's touched and freshly added
//! vertices are retired greedily (ascending id, for determinism) whenever
//! every vertex they cover has another dominator. Shrink is exactly as
//! local as repair — a redundancy can only appear where the batch changed
//! coverage — and it is what lets a deletion-heavy workload *lower* the
//! maintained weight instead of ratcheting it up. [`Maintainer`] tracks
//! the residual decay as a **drift estimate** — current weight over the
//! weight of the last full solve — and falls back to a caller-supplied
//! certified re-solve when the estimate exceeds
//! [`RepairConfig::max_drift`]. The churn scenarios
//! (`arbodom-scenarios`) run the equivalence harness on top of this:
//! every batch, the repaired set is checked valid and its weight compared
//! against a fresh certified reference, so measured (not just estimated)
//! drift is recorded per batch.
//!
//! The maintained state also carries the
//! [`chain digest`](arbodom_graph::digest::chain_digest) of its mutation
//! history, giving every dynamic instance a stable identity:
//! base [`edge_digest`] plus the exact delta sequence applied.
//!
//! # Example
//!
//! ```
//! use arbodom_core::repair::{Maintainer, RepairConfig};
//! use arbodom_core::{verify, weighted};
//! use arbodom_graph::{generators, GraphDelta};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let g = generators::forest_union(300, 2, &mut rng);
//! let cfg = weighted::Config::new(2, 0.2)?;
//! let sol = weighted::solve(&g, &cfg)?;
//! let mut state = Maintainer::new(g, &sol, RepairConfig::default());
//!
//! let delta = GraphDelta::new([], [(0, state.graph().neighbors(0.into())[0].get())])?;
//! let outcome = state.apply(&delta, |g| weighted::solve(g, &cfg))?;
//! assert!(verify::is_dominating_set(state.graph(), state.in_ds()));
//! assert_eq!(outcome.weight, state.weight());
//! # Ok::<(), arbodom_core::CoreError>(())
//! ```

use arbodom_graph::digest::{chain_digest, edge_digest};
use arbodom_graph::{Graph, GraphDelta, NodeId};

use crate::{verify, CoreError, DsResult, Result};

/// Policy knobs for [`Maintainer`].
#[derive(Clone, Copy, Debug)]
pub struct RepairConfig {
    /// Maximum tolerated *estimated* drift before [`Maintainer::apply`]
    /// falls back to a full re-solve: the fallback fires when
    /// `weight > (1 + max_drift) · anchor_weight`, where the anchor is
    /// the weight right after the last full solve.
    pub max_drift: f64,
    /// Force a full re-solve after this many consecutive repaired
    /// batches regardless of drift (`0` disables the limit). Guards
    /// against slow quality decay that individual batches hide.
    pub max_batches: usize,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            max_drift: 0.25,
            max_batches: 0,
        }
    }
}

/// What one [`Maintainer::apply`] call did.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// `true` when local repair was kept; `false` when the drift bound
    /// tripped and the certified fallback re-solved from scratch.
    pub repaired: bool,
    /// Nodes the local repair added (empty when the batch re-solved).
    pub added: Vec<NodeId>,
    /// Nodes the local shrink pass retired as redundant (empty when the
    /// batch re-solved).
    pub removed: Vec<NodeId>,
    /// Touched vertices that had lost domination before the repair.
    pub undominated_before: usize,
    /// Set weight after the batch.
    pub weight: u64,
    /// `weight / anchor_weight` after the batch — 1.0 right after a full
    /// solve, growing as repair additions outpace shrink removals (and
    /// dipping below 1.0 when a deletion-heavy batch lets shrink retire
    /// more weight than repair added).
    pub drift_estimate: f64,
    /// Chain digest of the mutation history after this batch.
    pub chain: u64,
    /// Iterations reported by the fallback solve (`0` when repaired —
    /// local repair runs no simulation rounds at all).
    pub solve_iterations: usize,
}

/// Restores validity of `in_ds` on `g` after a mutation that touched the
/// given vertices: every touched vertex that lost domination elects its
/// `tau_argmin` (the completion rule of Theorem 1.1) into the set.
///
/// Correct under the locality fact in the module docs: if `in_ds` was
/// valid before an edge-only mutation, every invalid vertex afterwards is
/// an endpoint of a deleted edge, hence in `touched`. Vertices are
/// processed in the order given (keep it sorted for determinism); the
/// nodes added are returned in that order.
pub fn repair_step(g: &Graph, in_ds: &mut [bool], touched: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(in_ds.len(), g.n(), "flag vector must cover all nodes");
    let mut added = Vec::new();
    for &u in touched {
        if !g.closed_neighbors(u).any(|w| in_ds[w.index()]) {
            let dominator = g.tau_argmin(u);
            in_ds[dominator.index()] = true;
            added.push(dominator);
        }
    }
    added
}

/// Retires redundant dominating-set members around `seeds`: every set
/// member in the closed neighborhood of a seed is removed — greedily, in
/// ascending id order — whenever every vertex of *its* closed
/// neighborhood keeps another dominator without it.
///
/// This is the deletion-side counterpart of [`repair_step`], and just as
/// local: after a batch, a member can only have become redundant if the
/// batch changed coverage somewhere in its neighborhood, i.e. near a
/// touched vertex (edge endpoints) or a freshly elected dominator — pass
/// both as seeds. The fixed ascending order makes the greedy outcome
/// deterministic regardless of seed order. Returns the removed nodes in
/// that order; `in_ds` stays a valid dominating set throughout.
pub fn shrink_step(g: &Graph, in_ds: &mut [bool], seeds: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(in_ds.len(), g.n(), "flag vector must cover all nodes");
    let mut candidates: Vec<NodeId> = seeds
        .iter()
        .flat_map(|&u| g.closed_neighbors(u))
        .filter(|&w| in_ds[w.index()])
        .collect();
    candidates.sort_unstable();
    candidates.dedup();

    let mut removed = Vec::new();
    for u in candidates {
        in_ds[u.index()] = false;
        let safe = g
            .closed_neighbors(u)
            .all(|w| g.closed_neighbors(w).any(|x| in_ds[x.index()]));
        if safe {
            removed.push(u);
        } else {
            in_ds[u.index()] = true;
        }
    }
    removed
}

/// Owned solve state for one dynamic instance: the current graph, the
/// maintained dominating set, the drift anchor, and the digest chain of
/// the mutation history. This is the state an `arbodomd` session holds.
#[derive(Clone, Debug)]
pub struct Maintainer {
    graph: Graph,
    in_ds: Vec<bool>,
    weight: u64,
    anchor_weight: u64,
    chain: u64,
    cfg: RepairConfig,
    batches_since_solve: usize,
}

impl Maintainer {
    /// Adopts a solved instance. `solution` must be a valid dominating
    /// set of `graph`.
    ///
    /// # Panics
    ///
    /// Panics when the solution's flag vector does not cover the graph or
    /// does not dominate it — the maintainer's invariant is validity, and
    /// adopting an invalid set would silently break every later batch.
    pub fn new(graph: Graph, solution: &DsResult, cfg: RepairConfig) -> Self {
        assert!(
            verify::is_dominating_set(&graph, &solution.in_ds),
            "maintainer requires a valid dominating set to start from"
        );
        let chain = edge_digest(&graph);
        Maintainer {
            in_ds: solution.in_ds.clone(),
            weight: solution.weight,
            anchor_weight: solution.weight.max(1),
            chain,
            graph,
            cfg,
            batches_since_solve: 0,
        }
    }

    /// The current graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Membership flags of the maintained dominating set.
    pub fn in_ds(&self) -> &[bool] {
        &self.in_ds
    }

    /// Total weight of the maintained set.
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Chain digest of the mutation history: the base graph's
    /// [`edge_digest`] folded with every applied delta, in order.
    pub fn chain(&self) -> u64 {
        self.chain
    }

    /// Batches repaired since the last full solve.
    pub fn batches_since_solve(&self) -> usize {
        self.batches_since_solve
    }

    /// Current drift estimate: maintained weight over the last full
    /// solve's weight.
    pub fn drift_estimate(&self) -> f64 {
        self.weight as f64 / self.anchor_weight as f64
    }

    /// Applies one delta batch: mutates the graph (overlay apply),
    /// advances the digest chain, repairs validity locally, retires
    /// redundant members via [`shrink_step`], and — when
    /// the drift estimate exceeds [`RepairConfig::max_drift`] or the
    /// batch budget [`RepairConfig::max_batches`] is spent — replaces the
    /// set with a fresh certified solution from `resolve`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Graph`] when the delta conflicts with the maintained
    /// graph (the state is left unchanged), any error of `resolve`, and
    /// [`CoreError::Simulation`] when `resolve` returns a non-dominating
    /// set.
    pub fn apply<F>(&mut self, delta: &GraphDelta, resolve: F) -> Result<BatchOutcome>
    where
        F: FnOnce(&Graph) -> Result<DsResult>,
    {
        let next = delta.apply(&self.graph)?;
        self.graph = next;
        self.chain = chain_digest(self.chain, delta);

        let touched = delta.touched();
        let undominated_before = touched
            .iter()
            .filter(|&&u| {
                !self
                    .graph
                    .closed_neighbors(u)
                    .any(|w| self.in_ds[w.index()])
            })
            .count();
        let added = repair_step(&self.graph, &mut self.in_ds, &touched);
        self.weight += self.graph.set_weight(added.iter().copied());
        let mut seeds = touched.clone();
        seeds.extend(added.iter().copied());
        let removed = shrink_step(&self.graph, &mut self.in_ds, &seeds);
        self.weight -= self.graph.set_weight(removed.iter().copied());
        self.batches_since_solve += 1;

        let over_drift = self.drift_estimate() > 1.0 + self.cfg.max_drift;
        let over_budget =
            self.cfg.max_batches > 0 && self.batches_since_solve >= self.cfg.max_batches;
        if !(over_drift || over_budget) {
            return Ok(BatchOutcome {
                repaired: true,
                added,
                removed,
                undominated_before,
                weight: self.weight,
                drift_estimate: self.drift_estimate(),
                chain: self.chain,
                solve_iterations: 0,
            });
        }
        let iterations = self.resolve_with(resolve)?;
        Ok(BatchOutcome {
            repaired: false,
            added: Vec::new(),
            removed: Vec::new(),
            undominated_before,
            weight: self.weight,
            drift_estimate: 1.0,
            chain: self.chain,
            solve_iterations: iterations,
        })
    }

    /// Forces a full re-solve through `resolve`, re-anchoring the drift
    /// estimate at the fresh solution's weight. Returns the solve's
    /// iteration count.
    ///
    /// # Errors
    ///
    /// Any error of `resolve`, and [`CoreError::Simulation`] when the
    /// returned set does not dominate the current graph.
    pub fn resolve_with<F>(&mut self, resolve: F) -> Result<usize>
    where
        F: FnOnce(&Graph) -> Result<DsResult>,
    {
        let fresh = resolve(&self.graph)?;
        if !verify::is_dominating_set(&self.graph, &fresh.in_ds) {
            return Err(CoreError::Simulation(
                "fallback re-solve produced a non-dominating set".into(),
            ));
        }
        self.in_ds = fresh.in_ds;
        self.weight = fresh.weight;
        self.anchor_weight = fresh.weight.max(1);
        self.batches_since_solve = 0;
        Ok(fresh.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weighted;
    use arbodom_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn solver(alpha: usize) -> impl Fn(&Graph) -> Result<DsResult> {
        move |g: &Graph| weighted::solve(g, &weighted::Config::new(alpha, 0.2)?)
    }

    /// A deterministic valid delta against `g`: delete a few existing
    /// edges, insert a few absent ones.
    fn churn(g: &Graph, seed: u64, dels: usize, inss: usize) -> GraphDelta {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let edges: Vec<_> = g.edges().collect();
        let mut deletes = Vec::new();
        for _ in 0..dels.min(edges.len()) {
            let (u, v) = edges[(next() % edges.len() as u64) as usize];
            deletes.push((u.get(), v.get()));
        }
        let mut inserts = Vec::new();
        while inserts.len() < inss {
            let (u, v) = (
                (next() % g.n() as u64) as u32,
                (next() % g.n() as u64) as u32,
            );
            if u != v && !g.has_edge(NodeId::new(u), NodeId::new(v)) {
                inserts.push((u, v));
            }
        }
        GraphDelta::new(inserts, deletes).unwrap()
    }

    #[test]
    fn repair_step_restores_validity_on_deletion() {
        // Path 0-1-2-3-4 dominated by {1, 3}; delete (3, 4): node 4
        // loses its only dominator and must elect tau_argmin.
        let g = generators::path(5);
        let mut in_ds = vec![false, true, false, true, false];
        let d = GraphDelta::new([], [(3, 4)]).unwrap();
        let g2 = d.apply(&g).unwrap();
        let added = repair_step(&g2, &mut in_ds, &d.touched());
        assert!(verify::is_dominating_set(&g2, &in_ds));
        assert_eq!(added, vec![NodeId::new(4)], "isolated node self-elects");
    }

    #[test]
    fn maintainer_stays_valid_over_many_batches() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::forest_union(400, 2, &mut rng);
        let sol = solver(2)(&g).unwrap();
        let mut state = Maintainer::new(g, &sol, RepairConfig::default());
        for batch in 0..30 {
            let delta = churn(state.graph(), batch, 5, 5);
            let out = state.apply(&delta, solver(3)).unwrap();
            assert!(
                verify::is_dominating_set(state.graph(), state.in_ds()),
                "batch {batch} left an invalid set"
            );
            assert_eq!(out.weight, state.weight());
            assert!(out.drift_estimate > 0.0);
        }
    }

    #[test]
    fn shrink_retires_member_made_redundant_by_repair() {
        // Two hubs over five leaves: an expensive hub c (weight 10) and a
        // cheap one h (weight 1), every leaf (weight 5) adjacent to both.
        // Start from DS = {c}, valid with weight 10. Deleting edge (c,
        // leaf2) undominates leaf2, whose tau_argmin is h; once h joins,
        // *everything* c covers is covered by h, so shrink must retire c
        // and the maintained weight must DROP from 10 to 1 — the behavior
        // a repair-only maintainer (weight ratcheting up to 11) cannot
        // produce.
        let c = 0u32;
        let h = 1u32;
        let leaves = 2u32..=6;
        let mut edges = Vec::new();
        edges.push((c, h));
        for l in leaves.clone() {
            edges.push((c, l));
            edges.push((h, l));
        }
        let g = Graph::from_edges(7, edges.iter().copied())
            .unwrap()
            .with_weights(vec![10, 1, 5, 5, 5, 5, 5])
            .unwrap();
        let mut in_ds = vec![false; 7];
        in_ds[c as usize] = true;
        assert!(verify::is_dominating_set(&g, &in_ds));
        let sol = DsResult::from_flags(&g, in_ds, 0, None);
        assert_eq!(sol.weight, 10);
        let mut state = Maintainer::new(g, &sol, RepairConfig::default());

        let delta = GraphDelta::new([], [(c, 2)]).unwrap();
        let out = state.apply(&delta, solver(2)).unwrap();
        assert!(out.repaired, "local repair must handle one deletion");
        assert_eq!(out.added, vec![NodeId::new(h)], "leaf elects the cheap hub");
        assert_eq!(out.removed, vec![NodeId::new(c)], "expensive hub retired");
        assert_eq!(state.weight(), 1, "weight must shrink, not ratchet up");
        assert!(out.drift_estimate < 1.0);
        assert!(verify::is_dominating_set(state.graph(), state.in_ds()));
    }

    #[test]
    fn shrink_step_keeps_needed_members() {
        // Path 0-1-2-3-4 with DS = {1, 3}: both members are needed (0 and
        // 4 have unique dominators), so shrinking around any seed must be
        // a no-op.
        let g = generators::path(5);
        let mut in_ds = vec![false, true, false, true, false];
        let seeds: Vec<NodeId> = (0..5).map(NodeId::new).collect();
        let removed = shrink_step(&g, &mut in_ds, &seeds);
        assert!(removed.is_empty(), "removed {removed:?}");
        assert_eq!(in_ds, vec![false, true, false, true, false]);
        assert!(verify::is_dominating_set(&g, &in_ds));
    }

    #[test]
    fn drift_bound_triggers_fallback() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::forest_union(300, 2, &mut rng);
        let sol = solver(2)(&g).unwrap();
        // With the shrink pass, balanced churn barely moves the weight;
        // delete-only churn fragments the forest, and every stranded
        // vertex must self-elect — weight climbs no matter how well
        // shrink compensates, so a razor-thin bound must trip.
        let mut state = Maintainer::new(
            g,
            &sol,
            RepairConfig {
                max_drift: 0.0,
                max_batches: 0,
            },
        );
        let mut resolved = 0;
        for batch in 0..40 {
            let out = state
                .apply(&churn(state.graph(), 1000 + batch, 10, 0), solver(3))
                .unwrap();
            if !out.repaired {
                resolved += 1;
                assert!((out.drift_estimate - 1.0).abs() < 1e-12);
                assert_eq!(state.batches_since_solve(), 0);
            }
        }
        assert!(
            resolved > 0,
            "tight drift bound never tripped in 40 batches"
        );
    }

    #[test]
    fn batch_budget_forces_periodic_resolve() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = generators::forest_union(200, 2, &mut rng);
        let sol = solver(2)(&g).unwrap();
        let mut state = Maintainer::new(
            g,
            &sol,
            RepairConfig {
                max_drift: f64::INFINITY,
                max_batches: 4,
            },
        );
        for batch in 0..8 {
            let out = state
                .apply(&churn(state.graph(), 99 + batch, 2, 2), solver(3))
                .unwrap();
            let expect_resolve = (batch + 1) % 4 == 0;
            assert_eq!(out.repaired, !expect_resolve, "batch {batch}");
        }
    }

    #[test]
    fn conflicting_delta_leaves_state_unchanged() {
        let g = generators::path(6);
        let sol = solver(1)(&g).unwrap();
        let mut state = Maintainer::new(g, &sol, RepairConfig::default());
        let chain = state.chain();
        let weight = state.weight();
        // (0, 5) is absent in a path: deleting it must fail cleanly.
        let bad = GraphDelta::new([], [(0, 5)]).unwrap();
        let err = state.apply(&bad, solver(1)).unwrap_err();
        assert!(matches!(err, CoreError::Graph(_)), "{err:?}");
        assert_eq!(state.chain(), chain, "failed batch must not advance chain");
        assert_eq!(state.weight(), weight);
        assert!(verify::is_dominating_set(state.graph(), state.in_ds()));
    }

    #[test]
    fn equivalence_harness_repair_tracks_certified_reference() {
        // The acceptance harness in miniature: after every batch the
        // repaired set is valid, and its weight stays within the drift
        // bound of a fresh certified re-solve on the same graph.
        let mut rng = StdRng::seed_from_u64(17);
        let g = generators::forest_union(350, 3, &mut rng);
        let sol = solver(3)(&g).unwrap();
        let cfg = RepairConfig {
            max_drift: 0.30,
            max_batches: 0,
        };
        let mut state = Maintainer::new(g, &sol, cfg);
        for batch in 0..20 {
            let delta = churn(state.graph(), 31 * batch + 5, 4, 4);
            state.apply(&delta, solver(4)).unwrap();
            assert!(verify::is_dominating_set(state.graph(), state.in_ds()));
            let reference = solver(4)(state.graph()).unwrap();
            assert!(verify::is_dominating_set(state.graph(), &reference.in_ds));
            let measured_drift = state.weight() as f64 / reference.weight.max(1) as f64;
            // Repair is allowed to be worse than a fresh solve, but the
            // maintainer's own anchor keeps the decay bounded; allow the
            // anchor slack on top of the configured bound.
            assert!(
                measured_drift <= (1.0 + cfg.max_drift) * 1.5,
                "batch {batch}: measured drift {measured_drift} out of bounds"
            );
        }
    }

    #[test]
    fn chain_digest_identifies_history() {
        let g = generators::path(8);
        let sol = solver(1)(&g).unwrap();
        let d1 = GraphDelta::new([(0, 2)], []).unwrap();
        let d2 = GraphDelta::new([(0, 3)], []).unwrap();
        let mut a = Maintainer::new(g.clone(), &sol, RepairConfig::default());
        let mut b = Maintainer::new(g, &sol, RepairConfig::default());
        a.apply(&d1, solver(1)).unwrap();
        a.apply(&d2, solver(1)).unwrap();
        b.apply(&d2, solver(1)).unwrap();
        b.apply(&d1, solver(1)).unwrap();
        // Same final structure, different history: digests must differ.
        assert_eq!(
            arbodom_graph::digest::edge_digest(a.graph()),
            arbodom_graph::digest::edge_digest(b.graph())
        );
        assert_ne!(a.chain(), b.chain());
    }

    #[test]
    #[should_panic(expected = "valid dominating set")]
    fn adopting_invalid_solution_panics() {
        let g = generators::path(4);
        let mut sol = solver(1)(&g).unwrap();
        sol.in_ds.iter_mut().for_each(|b| *b = false);
        let _ = Maintainer::new(g, &sol, RepairConfig::default());
    }
}
