//! Parameter-free front door: pick the algorithm and its knobs from the
//! graph and an optional target ratio.
//!
//! The paper's solvers ask the caller for α, ε, t — reasonable for a
//! theorem statement, less so for a user with a graph file. This module
//! chooses for them:
//!
//! 1. **α**: the exact pseudoarboricity `p(G)` when affordable (footnote 2
//!    of the paper makes `p` a legal and optimal parameter), otherwise the
//!    degeneracy upper bound;
//! 2. **algorithm**: Theorem 1.1 when its guarantee `(2p+1)(1+ε)` can meet
//!    the target (or no target is given), escalating to Theorem 1.2 with
//!    the smallest `t` whose expected guarantee fits;
//! 3. **ε / t**: solved from the target ratio.

use arbodom_graph::{pseudoarboricity, Graph};

use crate::{randomized, weighted, CoreError, DsResult, Result};

/// Above this edge count the exact pseudoarboricity (worst-case `O(n·m)`)
/// is skipped in favor of the `O(n + m)` degeneracy bound.
const EXACT_P_EDGE_LIMIT: usize = 2_000_000;

/// What [`solve`] decided.
#[derive(Clone, Debug)]
pub struct AutoOutcome {
    /// The solution.
    pub result: DsResult,
    /// The arboricity parameter used (pseudoarboricity or degeneracy).
    pub alpha_used: usize,
    /// Whether `alpha_used` is the exact pseudoarboricity.
    pub alpha_exact: bool,
    /// Human-readable description of the chosen algorithm and parameters.
    pub choice: String,
    /// The proof-side guarantee of the choice (expected value for the
    /// randomized escalation).
    pub guarantee: f64,
}

/// Options for [`solve`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AutoConfig {
    /// Target approximation ratio; `None` accepts the default
    /// `(2α+1)·1.2`. Values at or below α are rejected — the paper cites
    /// NP-hardness of `(α−1−ε)`-approximation \[BU17\].
    pub target_ratio: Option<f64>,
    /// Seed for the randomized escalation path.
    pub seed: u64,
}

/// Solves weighted MDS with automatically chosen parameters.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] when the target ratio is
/// unachievable (≤ α) and propagates solver errors.
pub fn solve(g: &Graph, cfg: &AutoConfig) -> Result<AutoOutcome> {
    let (alpha, alpha_exact) = if g.m() == 0 {
        (1, true)
    } else if g.m() <= EXACT_P_EDGE_LIMIT {
        (
            pseudoarboricity::min_outdegree_orientation(g).value.max(1),
            true,
        )
    } else {
        (
            arbodom_graph::orientation::degeneracy_order(g).1.max(1),
            false,
        )
    };
    let det_base = (2 * alpha + 1) as f64;
    match cfg.target_ratio {
        None => {
            let epsilon = 0.2;
            let w = weighted::Config::new(alpha, epsilon)?;
            Ok(AutoOutcome {
                result: weighted::solve(g, &w)?,
                alpha_used: alpha,
                alpha_exact,
                choice: format!("Theorem 1.1, α = {alpha}, ε = {epsilon}"),
                guarantee: w.guarantee(),
            })
        }
        Some(target) => {
            if target <= alpha as f64 {
                return Err(CoreError::param(
                    "target_ratio",
                    format!(
                        "{target} is at or below α = {alpha}; the paper cites NP-hardness \
                         of (α−1−ε)-approximation, and its best algorithm reaches α(1+o(1))"
                    ),
                ));
            }
            // Deterministic path if (2α+1)(1+ε) ≤ target has an ε in (0,1).
            let eps_needed = target / det_base - 1.0;
            if eps_needed > 0.0 {
                let epsilon = eps_needed.min(0.95);
                let w = weighted::Config::new(alpha, epsilon)?;
                return Ok(AutoOutcome {
                    result: weighted::solve(g, &w)?,
                    alpha_used: alpha,
                    alpha_exact,
                    choice: format!("Theorem 1.1, α = {alpha}, ε = {epsilon:.3}"),
                    guarantee: w.guarantee(),
                });
            }
            // Escalate: smallest t whose proof-side expected guarantee fits.
            let delta = g.max_degree();
            for t in 1..=64 {
                let r = randomized::Config::new(alpha, t, cfg.seed)?;
                if r.guarantee(delta) <= target {
                    return Ok(AutoOutcome {
                        result: randomized::solve(g, &r)?,
                        alpha_used: alpha,
                        alpha_exact,
                        choice: format!("Theorem 1.2, α = {alpha}, t = {t} (expected guarantee)"),
                        guarantee: r.guarantee(delta),
                    });
                }
            }
            Err(CoreError::param(
                "target_ratio",
                format!(
                    "no parameterization reaches {target} for α = {alpha} (needs > α + O(log α))"
                ),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use arbodom_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_choice_is_deterministic_theorem() {
        let mut rng = StdRng::seed_from_u64(501);
        let g = generators::forest_union(300, 3, &mut rng);
        let out = solve(&g, &AutoConfig::default()).unwrap();
        assert!(verify::is_dominating_set(&g, &out.result.in_ds));
        assert!(out.choice.contains("Theorem 1.1"));
        assert!(out.alpha_exact);
        assert!(out.alpha_used <= 3);
    }

    #[test]
    fn loose_target_uses_deterministic_with_big_eps() {
        let mut rng = StdRng::seed_from_u64(502);
        let g = generators::forest_union(200, 2, &mut rng);
        let out = solve(
            &g,
            &AutoConfig {
                target_ratio: Some(9.0),
                seed: 0,
            },
        )
        .unwrap();
        assert!(out.choice.contains("Theorem 1.1"));
        assert!(out.guarantee <= 9.0 + 1e-9);
        assert!(verify::is_dominating_set(&g, &out.result.in_ds));
    }

    #[test]
    fn tight_target_escalates_to_randomized() {
        let mut rng = StdRng::seed_from_u64(503);
        let g = generators::forest_union(300, 8, &mut rng);
        let alpha = solve(&g, &AutoConfig::default()).unwrap().alpha_used;
        // Ask for better than (2α+1): must escalate to Theorem 1.2.
        let target = (2 * alpha) as f64;
        let out = solve(
            &g,
            &AutoConfig {
                target_ratio: Some(target),
                seed: 3,
            },
        );
        if let Ok(out) = out {
            assert!(out.choice.contains("Theorem 1.2"), "{}", out.choice);
            assert!(out.guarantee <= target + 1e-9);
            assert!(verify::is_dominating_set(&g, &out.result.in_ds));
        }
        // (An Err is also legal if even t = 64 cannot fit the target at
        // this Δ; the assertion above covers the achievable case.)
    }

    #[test]
    fn impossible_target_rejected() {
        let mut rng = StdRng::seed_from_u64(504);
        let g = generators::forest_union(200, 4, &mut rng);
        let alpha = solve(&g, &AutoConfig::default()).unwrap().alpha_used;
        let err = solve(
            &g,
            &AutoConfig {
                target_ratio: Some(alpha as f64 * 0.5),
                seed: 0,
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("NP-hard"));
    }

    #[test]
    fn pseudoarboricity_beats_degeneracy_on_sparse_unions() {
        // The exact p gives a smaller α than the degeneracy would.
        let mut rng = StdRng::seed_from_u64(505);
        let g = generators::forest_union_partial(400, 8, 0.4, &mut rng);
        let out = solve(&g, &AutoConfig::default()).unwrap();
        let degeneracy = arbodom_graph::orientation::degeneracy_order(&g).1;
        assert!(out.alpha_used <= degeneracy);
        assert!(out.alpha_exact);
    }

    #[test]
    fn edgeless_graph() {
        let g = arbodom_graph::Graph::from_edges(4, []).unwrap();
        let out = solve(&g, &AutoConfig::default()).unwrap();
        assert_eq!(out.result.size, 4);
    }
}
