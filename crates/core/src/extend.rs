//! Lemma 4.6: randomized extension of a partial dominating set.
//!
//! Given the output of Lemma 4.1 — a partial set `S` and a packing with
//! `x_v ≥ λτ_v` for undominated `v` — this algorithm finds `S′` such that
//! `S ∪ S′` dominates, with `E[w(S′)] ≤ γ(γ+1)⌈log_γ λ⁻¹⌉ · OPT`, in
//! `O(log_γ λ⁻¹ · log_γ Δ)` rounds.
//!
//! Structure: `t = ⌈log_γ λ⁻¹⌉` **phases**. Each phase processes the set
//! `Γ = {u ∉ S∪S′ : X_u ≥ w_u/γ}`, where `X_u` sums packing values of
//! *undominated* nodes in `N⁺(u)`, through `r = ⌈log_γ(Δ+1)⌉ + 1`
//! sampling **iterations** with probability growing geometrically from
//! `1/(Δ+1)` to 1; afterwards, undominated packing values are multiplied
//! by `γ` (safe, because every node above the `w_u/γ` threshold was
//! sampled with probability 1 in the final iteration).
//!
//! Randomness is drawn through [`arbodom_congest::det_rand`] keyed by
//! `(seed, phase, iteration, node)`, so the centralized run here and the
//! CONGEST program in [`crate::distributed`] make *identical* choices.
//!
//! The caller's packing is **not** mutated: the γ-multiplications are
//! internal. The original packing from Lemma 4.1 remains the feasible dual
//! certificate (the multiplied one is feasible only for the residual
//! subproblem).

use arbodom_congest::det_rand;
use arbodom_graph::{Graph, NodeId};

use crate::{CoreError, Result};

/// Domain-separation tag for Lemma 4.6's random draws.
pub const EXTEND_RAND_TAG: u64 = 0x4c_45_4d_34_36; // "LEM46"

/// The sampling probability of iteration `iter ∈ 1..=r_iters`:
/// `min(γ^(iter−1)/(Δ+1), 1)`, with the final iteration forced to exactly 1
/// (mathematically `γ^(r−1)/(Δ+1) ≥ 1`; forcing removes f64 slop).
///
/// Computed by repeated multiplication so the centralized solver and the
/// CONGEST node program (which evaluate it independently) agree bit for
/// bit.
pub fn sampling_probability(gamma: f64, delta_p1: f64, iter: usize, r_iters: usize) -> f64 {
    if iter >= r_iters {
        return 1.0;
    }
    let mut p = 1.0 / delta_p1;
    for _ in 1..iter {
        p = (p * gamma).min(1.0);
    }
    p
}

/// Parameters of Lemma 4.6.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExtendConfig {
    /// The packing floor λ from Lemma 4.1 (`0 < λ`).
    pub lambda: f64,
    /// The geometric rate `γ > 1`.
    pub gamma: f64,
    /// Seed for the sampling randomness.
    pub seed: u64,
}

impl ExtendConfig {
    /// Validates `λ > 0` and `γ > 1`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] outside those ranges.
    pub fn new(lambda: f64, gamma: f64, seed: u64) -> Result<Self> {
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(CoreError::param("lambda", "must be positive and finite"));
        }
        if !(gamma > 1.0 && gamma.is_finite()) {
            return Err(CoreError::param("gamma", "must be greater than 1"));
        }
        Ok(ExtendConfig {
            lambda,
            gamma,
            seed,
        })
    }

    /// Number of phases `t = max(1, ⌈log_γ λ⁻¹⌉)`.
    pub fn phases(&self) -> usize {
        let t = (1.0 / self.lambda).ln() / self.gamma.ln();
        (t.ceil() as usize).max(1)
    }

    /// Sampling iterations per phase `r = ⌈log_γ(Δ+1)⌉ + 1`.
    pub fn iterations_per_phase(&self, max_degree: usize) -> usize {
        let r = ((max_degree + 1) as f64).ln() / self.gamma.ln();
        r.ceil() as usize + 1
    }
}

/// The outcome of Lemma 4.6.
#[derive(Clone, Debug)]
pub struct ExtendOutcome {
    /// Membership in `S′`.
    pub in_s_prime: Vec<bool>,
    /// Total sampling iterations executed (phases × per-phase iterations).
    pub iterations: usize,
    /// Number of phases executed.
    pub phases: usize,
    /// Nodes that were still undominated after all phases and were fixed by
    /// electing a cheapest dominator. The lemma proves this is zero; it is
    /// kept as a guard against floating-point edge cases and is asserted
    /// zero throughout the test suite.
    pub fallback_elections: usize,
}

/// Runs Lemma 4.6: extends `(selected, dominated, x0)` — the state after
/// Lemma 4.1 — to a full dominating set.
///
/// `selected[v]` must flag `S`, `dominated[v]` must flag `N⁺[S]`, and `x0`
/// must satisfy property (b): `x0[v] ≥ λ·τ_v` for undominated `v`.
pub fn extend(
    g: &Graph,
    dominated: &[bool],
    selected: &[bool],
    x0: &[f64],
    cfg: &ExtendConfig,
) -> ExtendOutcome {
    let n = g.n();
    assert_eq!(dominated.len(), n);
    assert_eq!(selected.len(), n);
    assert_eq!(x0.len(), n);
    let delta_p1 = (g.max_degree() + 1) as f64;
    let mut x = x0.to_vec();
    let mut dom = dominated.to_vec();
    let mut sel = selected.to_vec();
    let mut in_s_prime = vec![false; n];
    let t_phases = cfg.phases();
    let r_iters = cfg.iterations_per_phase(g.max_degree());
    let mut iterations = 0usize;

    // X_u over undominated closed neighbors, in (self, ports-ascending)
    // order to match the CONGEST program bit for bit.
    let x_of = |u: NodeId, x: &[f64], dom: &[bool]| -> f64 {
        let mut sum = 0.0;
        if !dom[u.index()] {
            sum += x[u.index()];
        }
        for &v in g.neighbors(u) {
            if !dom[v.index()] {
                sum += x[v.index()];
            }
        }
        sum
    };

    for phase in 1..=t_phases {
        // Γ membership is "currently above threshold and unselected";
        // within a phase X_u only decreases, so this matches the paper's
        // init-then-prune description.
        for iter in 1..=r_iters {
            let p = sampling_probability(cfg.gamma, delta_p1, iter, r_iters);
            let mut sampled: Vec<NodeId> = Vec::new();
            for u in g.nodes() {
                if sel[u.index()] {
                    continue;
                }
                let xu = x_of(u, &x, &dom);
                if xu >= g.weight(u) as f64 / cfg.gamma
                    && det_rand::bernoulli(
                        cfg.seed,
                        &[
                            EXTEND_RAND_TAG,
                            phase as u64,
                            iter as u64,
                            u64::from(u.get()),
                        ],
                        p,
                    )
                {
                    sampled.push(u);
                }
            }
            for &u in &sampled {
                sel[u.index()] = true;
                in_s_prime[u.index()] = true;
                dom[u.index()] = true;
                for &w in g.neighbors(u) {
                    dom[w.index()] = true;
                }
            }
            iterations += 1;
        }
        // End of phase: raise undominated packing values by γ (internal
        // working values only; see module docs).
        for v in 0..n {
            if !dom[v] {
                x[v] *= cfg.gamma;
            }
        }
    }

    // The lemma guarantees domination; guard against f64 slop. Elections
    // are simultaneous (snapshot first) to match the one-round CONGEST
    // completion step exactly.
    let undominated: Vec<NodeId> = g
        .nodes()
        .filter(|&v| !g.closed_neighbors(v).any(|u| sel[u.index()]))
        .collect();
    let fallback_elections = undominated.len();
    for v in undominated {
        let dominator = g.tau_argmin(v);
        sel[dominator.index()] = true;
        in_s_prime[dominator.index()] = true;
    }

    ExtendOutcome {
        in_s_prime,
        iterations,
        phases: t_phases,
        fallback_elections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partial::{partial_dominating_set, PartialConfig};
    use crate::verify;
    use arbodom_graph::{generators, weights::WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation() {
        assert!(ExtendConfig::new(0.0, 2.0, 1).is_err());
        assert!(ExtendConfig::new(0.1, 1.0, 1).is_err());
        assert!(ExtendConfig::new(0.1, 2.0, 1).is_ok());
    }

    #[test]
    fn phase_and_iteration_counts() {
        let cfg = ExtendConfig::new(1.0 / 64.0, 2.0, 0).unwrap();
        assert_eq!(cfg.phases(), 6); // log2 64
        assert_eq!(cfg.iterations_per_phase(7), 4); // ⌈log2 8⌉ + 1
        let cfg = ExtendConfig::new(0.9, 2.0, 0).unwrap();
        assert_eq!(cfg.phases(), 1); // clamped to ≥ 1
    }

    #[test]
    fn from_empty_partial_set_dominates() {
        // Theorem 1.3's usage: S = ∅, x_v = τ_v/(Δ+1), λ = 1/(Δ+1).
        let mut rng = StdRng::seed_from_u64(91);
        let g = generators::gnp(200, 0.05, &mut rng);
        let g = WeightModel::Uniform { lo: 1, hi: 10 }.assign(&g, &mut rng);
        let delta_p1 = (g.max_degree() + 1) as f64;
        let x0: Vec<f64> = g.nodes().map(|v| g.tau(v) as f64 / delta_p1).collect();
        let cfg = ExtendConfig::new(1.0 / delta_p1, 2.0, 7).unwrap();
        let out = extend(&g, &vec![false; g.n()], &vec![false; g.n()], &x0, &cfg);
        assert!(verify::is_dominating_set(&g, &out.in_s_prime));
        assert_eq!(out.fallback_elections, 0, "lemma guarantees domination");
    }

    #[test]
    fn after_partial_set_completes_domination() {
        let mut rng = StdRng::seed_from_u64(92);
        for alpha in [2usize, 4] {
            let g = generators::forest_union(300, alpha, &mut rng);
            let g = WeightModel::Exponential { max_exp: 6 }.assign(&g, &mut rng);
            let t = 2usize;
            let eps = 1.0 / (4.0 * t as f64);
            let lambda = eps / (alpha as f64 + 1.0);
            let pcfg = PartialConfig::new(eps, lambda).unwrap();
            let part = partial_dominating_set(&g, &pcfg);
            let gamma = 2.0f64.max((alpha as f64).powf(1.0 / (2.0 * t as f64)));
            let cfg = ExtendConfig::new(lambda, gamma, 13).unwrap();
            let out = extend(&g, &part.dominated, &part.in_s, &part.x, &cfg);
            let mut in_ds = part.in_s.clone();
            for (flag, &added) in in_ds.iter_mut().zip(&out.in_s_prime) {
                *flag = *flag || added;
            }
            assert!(verify::is_dominating_set(&g, &in_ds), "α={alpha}");
            assert_eq!(out.fallback_elections, 0, "α={alpha}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = StdRng::seed_from_u64(93);
        let g = generators::gnp(150, 0.08, &mut rng);
        let delta_p1 = (g.max_degree() + 1) as f64;
        let x0: Vec<f64> = g.nodes().map(|v| g.tau(v) as f64 / delta_p1).collect();
        let cfg = ExtendConfig::new(1.0 / delta_p1, 3.0, 1234).unwrap();
        let a = extend(&g, &vec![false; g.n()], &vec![false; g.n()], &x0, &cfg);
        let b = extend(&g, &vec![false; g.n()], &vec![false; g.n()], &x0, &cfg);
        assert_eq!(a.in_s_prime, b.in_s_prime);
        // Different seed ⇒ (almost surely) different set on this size.
        let cfg2 = ExtendConfig::new(1.0 / delta_p1, 3.0, 99).unwrap();
        let c = extend(&g, &vec![false; g.n()], &vec![false; g.n()], &x0, &cfg2);
        assert_ne!(a.in_s_prime, c.in_s_prime);
    }

    #[test]
    fn expected_weight_within_lemma_bound_on_average() {
        // E[w(S′)] ≤ γ(γ+1)⌈log_γ λ⁻¹⌉ · OPT. Using Σx₀ ≤ OPT we check the
        // measured average against the bound with the packing lower bound
        // standing in for OPT (conservative: OPT ≥ Σx₀).
        let mut rng = StdRng::seed_from_u64(94);
        let g = generators::forest_union(400, 3, &mut rng);
        let delta_p1 = (g.max_degree() + 1) as f64;
        let x0: Vec<f64> = g.nodes().map(|v| g.tau(v) as f64 / delta_p1).collect();
        let lambda = 1.0 / delta_p1;
        let gamma = 2.0;
        let bound_factor = gamma * (gamma + 1.0) * (1.0 / lambda).log2().ceil();
        let lb: f64 = x0.iter().sum();
        let mut total = 0u64;
        let runs = 10;
        for seed in 0..runs {
            let cfg = ExtendConfig::new(lambda, gamma, seed).unwrap();
            let out = extend(&g, &vec![false; g.n()], &vec![false; g.n()], &x0, &cfg);
            total += g
                .nodes()
                .filter(|v| out.in_s_prime[v.index()])
                .map(|v| g.weight(v))
                .sum::<u64>();
        }
        let avg = total as f64 / runs as f64;
        assert!(
            avg <= bound_factor * lb.max(1.0) * 1.5,
            "avg weight {avg} above lemma bound {}",
            bound_factor * lb
        );
    }

    #[test]
    fn already_dominating_input_needs_nothing() {
        let g = generators::star(10);
        let mut selected = vec![false; 10];
        selected[0] = true; // hub dominates everything
        let dominated = vec![true; 10];
        let x0 = vec![0.05f64; 10];
        let cfg = ExtendConfig::new(0.05, 2.0, 5).unwrap();
        let out = extend(&g, &dominated, &selected, &x0, &cfg);
        assert!(out.in_s_prime.iter().all(|&b| !b));
        assert_eq!(out.fallback_elections, 0);
    }
}
