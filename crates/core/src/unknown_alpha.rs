//! Remark 4.5: dominating set when α is unknown (n is known).
//!
//! Pipeline:
//!
//! 1. **α-oblivious peeling orientation** ([`be_orientation`]), in the
//!    spirit of Barenboim–Elkin: peel all nodes of residual degree at most
//!    `(2+ε)·â` for doubling estimates `â = 1, 2, 4, …`, orienting each
//!    peeled node's residual edges outward (ties within a peel batch go to
//!    the smaller id). When a node peels at estimate `â`, `â/2 < α` held
//!    before the final estimate, so every out-degree is at most
//!    `(2+ε)·2α`.
//! 2. Each node computes the **local arboricity estimate**
//!    `α̂_v = max_{u∈N⁺(v)} outdeg(u)` and its own floor
//!    `λ_v = 1/((2α̂_v+1)(1+ε))`.
//! 3. The unknown-Δ iteration of Remark 4.4 runs with the per-node `λ_v`
//!    and initializer `x_v = τ_v/(n+1)`, giving a `(2α+1)(2+O(ε))`
//!    approximation.
//!
//! **Fidelity note.** The Remark cites [BE10] for an `O(log n/ε)`-round
//! orientation with unknown α; our doubling search spends `O(log n/ε)`
//! rounds per estimate, i.e. `O(log α · log n/ε)` in total. Round counts
//! reported by experiments use our variant; the approximation guarantee is
//! unaffected. (With α known, [`be_orientation_known`] matches the
//! `O(log n/ε)` bound.)

use arbodom_graph::orientation::Orientation;
use arbodom_graph::{Graph, NodeId};

use crate::{CoreError, DsResult, PackingCertificate, Result};

/// Outcome of the peeling orientation.
#[derive(Clone, Debug)]
pub struct PeelOrientation {
    /// The acyclic orientation produced.
    pub orientation: Orientation,
    /// Synchronous peel rounds executed.
    pub rounds: usize,
    /// The estimate `â` in force when each node peeled.
    pub peel_estimate: Vec<usize>,
}

fn peel_with_schedule(
    g: &Graph,
    epsilon: f64,
    mut threshold_for: impl FnMut(usize) -> f64,
) -> PeelOrientation {
    let n = g.n();
    let mut remaining: Vec<bool> = vec![true; n];
    let mut residual_deg: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let mut remaining_count = n;
    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut peel_estimate = vec![0usize; n];
    let mut rounds = 0usize;
    // Rounds needed at a *correct* estimate: each removes an ε/(2+ε)
    // fraction of the residual graph.
    let per_estimate = (((n + 1) as f64).ln() / (1.0 - epsilon / (2.0 + epsilon)).recip().ln())
        .ceil() as usize
        + 1;
    let mut estimate = 1usize;
    while remaining_count > 0 {
        let threshold = threshold_for(estimate);
        let mut progressed_any = false;
        for _ in 0..per_estimate {
            let batch: Vec<NodeId> = g
                .nodes()
                .filter(|&v| remaining[v.index()] && (residual_deg[v.index()] as f64) <= threshold)
                .collect();
            if batch.is_empty() {
                break;
            }
            progressed_any = true;
            rounds += 1;
            let in_batch: Vec<bool> = {
                let mut b = vec![false; n];
                for &v in &batch {
                    b[v.index()] = true;
                }
                b
            };
            for &v in &batch {
                peel_estimate[v.index()] = estimate;
                for &u in g.neighbors(v) {
                    if !remaining[u.index()] {
                        continue; // edge already oriented when u peeled
                    }
                    if in_batch[u.index()] {
                        // Same-batch tie: lower id takes the out-edge.
                        if v < u {
                            out[v.index()].push(u);
                        }
                    } else {
                        out[v.index()].push(u);
                    }
                }
            }
            for &v in &batch {
                remaining[v.index()] = false;
                remaining_count -= 1;
            }
            for &v in &batch {
                for &u in g.neighbors(v) {
                    if remaining[u.index()] {
                        residual_deg[u.index()] -= 1;
                    }
                }
            }
            if remaining_count == 0 {
                break;
            }
        }
        if remaining_count > 0 {
            estimate *= 2;
            if !progressed_any {
                rounds += 1; // an unproductive probe round at this estimate
            }
        }
    }
    PeelOrientation {
        orientation: Orientation::from_out_lists(out),
        rounds,
        peel_estimate,
    }
}

/// α-oblivious peeling: doubling estimates, threshold `(2+ε)·â`.
/// Out-degrees are at most `(2+ε)·2α`.
pub fn be_orientation(g: &Graph, epsilon: f64) -> PeelOrientation {
    peel_with_schedule(g, epsilon, |estimate| (2.0 + epsilon) * estimate as f64)
}

/// Known-α Barenboim–Elkin peeling: fixed threshold `(2+ε)·α`, finishing in
/// `O(log n/ε)` rounds with out-degree at most `(2+ε)·α`.
pub fn be_orientation_known(g: &Graph, alpha: usize, epsilon: f64) -> PeelOrientation {
    let th = (2.0 + epsilon) * alpha.max(1) as f64;
    peel_with_schedule(g, epsilon, move |_| th)
}

/// Parameters for Remark 4.5.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Config {
    /// Approximation slack ε ∈ (0, 1).
    pub epsilon: f64,
}

impl Config {
    /// Validates `ε ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] outside that range.
    pub fn new(epsilon: f64) -> Result<Self> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CoreError::param("epsilon", "must be in (0, 1)"));
        }
        Ok(Config { epsilon })
    }
}

/// Runs the unknown-α variant. Neither Δ nor α is read globally; the
/// algorithm uses only `n` and local information, as a CONGEST node could.
///
/// # Errors
///
/// Propagates parameter validation errors.
pub fn solve(g: &Graph, cfg: &Config) -> Result<DsResult> {
    let n = g.n();
    let one_plus_eps = 1.0 + cfg.epsilon;
    let peel = be_orientation(g, cfg.epsilon);
    // Local arboricity estimate: max out-degree over the closed
    // neighborhood (one CONGEST round after orientation).
    let lambda_v: Vec<f64> = g
        .nodes()
        .map(|v| {
            let ahat = g
                .closed_neighbors(v)
                .map(|u| peel.orientation.out_degree(u))
                .max()
                .expect("closed neighborhood nonempty")
                .max(1);
            1.0 / ((2 * ahat + 1) as f64 * one_plus_eps)
        })
        .collect();
    let tau: Vec<u64> = g.nodes().map(|v| g.tau(v)).collect();
    let mut x: Vec<f64> = tau.iter().map(|&t| t as f64 / (n + 1) as f64).collect();
    let mut in_s = vec![false; n];
    let mut in_s_prime = vec![false; n];
    let mut dominated = vec![false; n];
    let mut iterations = 0usize;
    let cap = ((2.0 * (n as f64 + 2.0) * (n as f64 + 2.0)).ln() / cfg.epsilon.ln_1p()).ceil()
        as usize
        + 3;

    while dominated.iter().any(|&d| !d) {
        assert!(
            iterations <= cap,
            "unknown-α loop exceeded its provable iteration cap"
        );
        // Simultaneous elections, as in Remark 4.4.
        let electors: Vec<_> = g
            .nodes()
            .filter(|&v| {
                !dominated[v.index()] && x[v.index()] > lambda_v[v.index()] * tau[v.index()] as f64
            })
            .collect();
        for v in electors {
            let dominator = g.tau_argmin(v);
            in_s_prime[dominator.index()] = true;
            dominated[dominator.index()] = true;
            for &u in g.neighbors(dominator) {
                dominated[u.index()] = true;
            }
        }
        let mut joined = Vec::new();
        for u in g.nodes() {
            if in_s[u.index()] {
                continue;
            }
            let xu: f64 = g.closed_neighbors(u).map(|v| x[v.index()]).sum();
            if xu >= g.weight(u) as f64 / one_plus_eps {
                joined.push(u);
            }
        }
        for &u in &joined {
            in_s[u.index()] = true;
            dominated[u.index()] = true;
            for &w in g.neighbors(u) {
                dominated[w.index()] = true;
            }
        }
        for v in 0..n {
            if !dominated[v] {
                x[v] *= one_plus_eps;
            }
        }
        iterations += 1;
    }

    let mut in_ds = in_s;
    for v in 0..n {
        in_ds[v] = in_ds[v] || in_s_prime[v];
    }
    Ok(DsResult::from_flags(
        g,
        in_ds,
        peel.rounds + iterations,
        Some(PackingCertificate::new(x)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use arbodom_graph::{generators, weights::WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn orientation_out_degree_bounded() {
        let mut rng = StdRng::seed_from_u64(141);
        for alpha in [1usize, 2, 4, 8] {
            let g = generators::forest_union(300, alpha, &mut rng);
            let eps = 0.5;
            let peel = be_orientation(&g, eps);
            assert!(peel.orientation.is_orientation_of(&g), "α={alpha}");
            let bound = ((2.0 + eps) * 2.0 * alpha as f64).ceil() as usize;
            assert!(
                peel.orientation.max_out_degree() <= bound,
                "α={alpha}: out-degree {} > (2+ε)·2α = {bound}",
                peel.orientation.max_out_degree()
            );
        }
    }

    #[test]
    fn known_alpha_orientation_tighter() {
        let mut rng = StdRng::seed_from_u64(142);
        let alpha = 4usize;
        let g = generators::forest_union(300, alpha, &mut rng);
        let eps = 0.5;
        let peel = be_orientation_known(&g, alpha, eps);
        assert!(peel.orientation.is_orientation_of(&g));
        let bound = ((2.0 + eps) * alpha as f64).ceil() as usize;
        assert!(peel.orientation.max_out_degree() <= bound);
        // Known-α peeling is O(log n / ε) rounds.
        assert!(peel.rounds <= 60, "rounds {}", peel.rounds);
    }

    #[test]
    fn dominates_with_remark_guarantee() {
        let mut rng = StdRng::seed_from_u64(143);
        for alpha in [1usize, 2, 4] {
            let g = generators::forest_union(250, alpha, &mut rng);
            let g = WeightModel::Uniform { lo: 1, hi: 20 }.assign(&g, &mut rng);
            let cfg = Config::new(0.25).unwrap();
            let sol = solve(&g, &cfg).unwrap();
            assert!(verify::is_dominating_set(&g, &sol.in_ds), "α={alpha}");
            let cert = sol.certificate.as_ref().unwrap();
            assert!(cert.is_feasible(&g, 1e-9), "α={alpha}");
            // (2α+1)(2+O(ε)) bound with the doubled α̂ from peeling.
            let bound = (2.0 * (2.25 * 2.0 * alpha as f64) + 1.0) * 1.25 * 1.25;
            let ratio = sol.certified_ratio().unwrap();
            assert!(
                ratio <= bound,
                "α={alpha}: certified ratio {ratio} above remark bound {bound}"
            );
        }
    }

    #[test]
    fn orientation_on_empty_and_tiny_graphs() {
        let g = arbodom_graph::Graph::from_edges(0, []).unwrap();
        let peel = be_orientation(&g, 0.3);
        assert_eq!(peel.rounds, 0);
        let g = arbodom_graph::Graph::from_edges(3, []).unwrap();
        let peel = be_orientation(&g, 0.3);
        assert!(peel.orientation.is_orientation_of(&g));
        let sol = solve(&g, &Config::new(0.3).unwrap()).unwrap();
        assert!(verify::is_dominating_set(&g, &sol.in_ds));
    }

    #[test]
    fn config_validation() {
        assert!(Config::new(0.0).is_err());
        assert!(Config::new(1.0).is_err());
        assert!(Config::new(0.5).is_ok());
    }
}
