//! Theorem 1.1: deterministic `(2α+1)(1+ε)`-approximate **weighted** MDS in
//! `O(log(Δ/α)/ε)` rounds.
//!
//! Runs Lemma 4.1 with `λ = 1/((2α+1)(1+ε))`, then for every node `v` still
//! undominated adds a cheapest dominator from `N⁺(v)` (a node of weight
//! `τ_v`). Property (b) gives `τ_v ≤ x_v/λ`, so the completion cost is
//! charged to the packing exactly like the partial set, yielding
//! `w(S∪S′) ≤ (2α+1)(1+ε) · OPT`.
//!
//! To the best of the paper's knowledge this was the first distributed
//! algorithm for the *weighted* problem in bounded-arboricity graphs.

use arbodom_graph::Graph;

use crate::partial::{partial_dominating_set, PartialConfig};
use crate::{CoreError, DsResult, PackingCertificate, Result};

/// Parameters for Theorem 1.1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Config {
    /// Arboricity bound α ≥ 1 known to all nodes.
    pub alpha: usize,
    /// Approximation slack ε ∈ (0, 1).
    pub epsilon: f64,
}

impl Config {
    /// Validates `alpha ≥ 1` and `ε ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] outside those ranges.
    pub fn new(alpha: usize, epsilon: f64) -> Result<Self> {
        if alpha == 0 {
            return Err(CoreError::param("alpha", "must be at least 1"));
        }
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CoreError::param("epsilon", "must be in (0, 1)"));
        }
        Ok(Config { alpha, epsilon })
    }

    /// The threshold floor `λ = 1/((2α+1)(1+ε))`.
    pub fn lambda(&self) -> f64 {
        1.0 / ((2 * self.alpha + 1) as f64 * (1.0 + self.epsilon))
    }

    /// The approximation guarantee `(2α+1)(1+ε)`.
    pub fn guarantee(&self) -> f64 {
        (2 * self.alpha + 1) as f64 * (1.0 + self.epsilon)
    }
}

/// Runs Theorem 1.1 on a (weighted) graph.
///
/// # Errors
///
/// Propagates parameter validation errors from the partial-set engine.
pub fn solve(g: &Graph, cfg: &Config) -> Result<DsResult> {
    let pcfg = PartialConfig::new(cfg.epsilon, cfg.lambda())?;
    let out = partial_dominating_set(g, &pcfg);
    let mut in_ds = out.in_s;
    // Completion: each undominated node elects its cheapest closed
    // neighbor (deterministic tie-break by id).
    for v in g.nodes() {
        if !out.dominated[v.index()] {
            in_ds[g.tau_argmin(v).index()] = true;
        }
    }
    Ok(DsResult::from_flags(
        g,
        in_ds,
        out.iterations + 1,
        Some(PackingCertificate::new(out.x)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use arbodom_graph::{generators, weights::WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation() {
        assert!(Config::new(0, 0.5).is_err());
        assert!(Config::new(2, 1.5).is_err());
        assert!(Config::new(2, 0.5).is_ok());
    }

    #[test]
    fn weighted_bound_holds_across_models() {
        let mut rng = StdRng::seed_from_u64(81);
        for alpha in [1usize, 2, 4] {
            for model in [
                WeightModel::Unit,
                WeightModel::Uniform { lo: 1, hi: 100 },
                WeightModel::Exponential { max_exp: 10 },
                WeightModel::DegreeCorrelated,
            ] {
                let g = generators::forest_union(300, alpha, &mut rng);
                let g = model.assign(&g, &mut rng);
                let cfg = Config::new(alpha, 0.25).unwrap();
                let sol = solve(&g, &cfg).unwrap();
                assert!(
                    verify::is_dominating_set(&g, &sol.in_ds),
                    "α={alpha} {model:?}"
                );
                let cert = sol.certificate.as_ref().unwrap();
                assert!(cert.is_feasible(&g, 1e-9));
                assert!(
                    sol.weight as f64 <= cfg.guarantee() * cert.lower_bound() * (1.0 + 1e-9),
                    "α={alpha} {model:?}: weight {} exceeds bound {}",
                    sol.weight,
                    cfg.guarantee() * cert.lower_bound()
                );
            }
        }
    }

    #[test]
    fn expensive_hub_is_avoided() {
        // A star where the hub is very expensive: buying all leaves is far
        // worse than buying the hub... but with weights the right answer is
        // the cheap leaves' perspective: each leaf's τ is min(hub, itself).
        // With hub weight ≫ leaves, OPT buys every leaf? No — leaves must be
        // dominated; a leaf is dominated by itself (weight 1) or the hub.
        // The hub must be dominated too (by itself or any leaf... no, only
        // the hub's neighbors can dominate it — all leaves are neighbors).
        // OPT = all leaves (n−1) vs hub (1000): for n−1 < 1000 OPT = n−1
        // ... plus nothing else: leaves dominate the hub as well. So
        // OPT = n−1 = 99.
        let n = 100;
        let mut w = vec![1u64; n];
        w[0] = 1000;
        let g = generators::star(n).with_weights(w).unwrap();
        let cfg = Config::new(1, 0.2).unwrap();
        let sol = solve(&g, &cfg).unwrap();
        assert!(verify::is_dominating_set(&g, &sol.in_ds));
        // Guarantee: ≤ 3·1.2·99 ≈ 356 < buying the hub among extras.
        assert!(
            sol.weight <= 360,
            "weighted star solution too heavy: {}",
            sol.weight
        );
    }

    #[test]
    fn zero_iterations_when_delta_small() {
        // A path has Δ = 2 < (2α+1)(1+ε) ⇒ the partial phase is empty and
        // the completion elects τ-argmins only.
        let g = generators::path(10);
        let sol = solve(&g, &Config::new(1, 0.5).unwrap()).unwrap();
        assert!(verify::is_dominating_set(&g, &sol.in_ds));
        assert_eq!(sol.iterations, 1);
    }

    #[test]
    fn matches_unweighted_theorem_on_unit_graphs() {
        // On unit weights the Thm 1.1 guarantee equals Thm 3.1's.
        let mut rng = StdRng::seed_from_u64(82);
        let g = generators::forest_union(200, 2, &mut rng);
        let cfg = Config::new(2, 0.3).unwrap();
        let sol = solve(&g, &cfg).unwrap();
        let cert = sol.certificate.as_ref().unwrap();
        assert!(sol.weight as f64 <= cfg.guarantee() * cert.lower_bound() * (1.0 + 1e-9));
    }

    #[test]
    fn single_node_graph() {
        let g = arbodom_graph::Graph::from_edges(1, []).unwrap();
        let sol = solve(&g, &Config::new(1, 0.5).unwrap()).unwrap();
        assert_eq!(sol.size, 1);
        assert!(verify::is_dominating_set(&g, &sol.in_ds));
    }
}
