//! Observation A.1: a single-round 3-approximation on forests (α = 1).
//!
//! Take every non-leaf node. The paper proves the factor 3 by charging each
//! optimal node, its parent, and its grandparent. Two boundary cases the
//! one-line description misses (and the proof implicitly assumes away) are
//! handled explicitly so the output is always a valid dominating set:
//!
//! * **isolated nodes** (degree 0) must pick themselves;
//! * **`K₂` components** (two adjacent leaves) would otherwise select
//!   nobody; the endpoint with the smaller id joins, which preserves both
//!   the single round and the factor (`K₂`'s OPT is 1, we pick 1).

use arbodom_graph::Graph;

use crate::{DsResult, Result};

/// The factor proven in Observation A.1.
pub const GUARANTEE: f64 = 3.0;

/// Runs the one-round tree algorithm on a forest.
///
/// The output is a valid dominating set for *any* graph, but the
/// 3-approximation is proven only for unweighted forests.
///
/// # Errors
///
/// Never fails; the `Result` wrapper keeps the solver signatures uniform.
pub fn solve(g: &Graph) -> Result<DsResult> {
    let in_ds: Vec<bool> = g
        .nodes()
        .map(|v| {
            let deg = g.degree(v);
            match deg {
                0 => true,
                1 => {
                    let u = g.neighbors(v)[0];
                    // Only needed when the sole neighbor is also a leaf.
                    g.degree(u) == 1 && v < u
                }
                _ => true,
            }
        })
        .collect();
    Ok(DsResult::from_flags(g, in_ds, 1, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use arbodom_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dominates_random_trees() {
        let mut rng = StdRng::seed_from_u64(121);
        for n in [1usize, 2, 3, 10, 100, 2000] {
            let g = generators::random_tree(n, &mut rng);
            let sol = solve(&g).unwrap();
            assert!(verify::is_dominating_set(&g, &sol.in_ds), "n={n}");
            assert_eq!(sol.iterations, 1);
        }
    }

    #[test]
    fn k2_and_isolated_handled() {
        // Two K2 components plus an isolated node.
        let g = arbodom_graph::Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
        let sol = solve(&g).unwrap();
        assert!(verify::is_dominating_set(&g, &sol.in_ds));
        assert_eq!(sol.size, 3); // one per K2 + the isolated node
        assert!(sol.in_ds[0] && !sol.in_ds[1]);
        assert!(sol.in_ds[2] && !sol.in_ds[3]);
        assert!(sol.in_ds[4]);
    }

    #[test]
    fn path_takes_internal_nodes() {
        let g = generators::path(6);
        let sol = solve(&g).unwrap();
        assert_eq!(
            sol.in_ds,
            vec![false, true, true, true, true, false],
            "internal nodes only"
        );
    }

    #[test]
    fn star_takes_hub_only() {
        let g = generators::star(50);
        let sol = solve(&g).unwrap();
        assert_eq!(sol.size, 1);
        assert!(sol.in_ds[0]);
    }

    #[test]
    fn factor_three_on_paths() {
        // OPT(P_n) = ⌈n/3⌉; non-leaves = n−2.
        for n in [3usize, 6, 30, 99] {
            let g = generators::path(n);
            let sol = solve(&g).unwrap();
            let opt = n.div_ceil(3);
            assert!(sol.size <= 3 * opt, "P_{n}: {} > 3·{opt}", sol.size);
        }
    }

    #[test]
    fn factor_three_on_random_trees_vs_caterpillar_structure() {
        // Caterpillar with many legs: OPT = spine count, we take the spine.
        let g = generators::caterpillar(10, 5);
        let sol = solve(&g).unwrap();
        assert!(verify::is_dominating_set(&g, &sol.in_ds));
        assert_eq!(sol.size, 10, "exactly the spine");
    }
}
