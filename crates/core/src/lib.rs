//! Algorithms from *Near-Optimal Distributed Dominating Set in Bounded
//! Arboricity Graphs* (Dory, Ghaffari, Ilchi; PODC 2022).
//!
//! The paper constructs dominating sets in two steps: a primal-dual
//! **partial dominating set** (Lemma 4.1) whose weight is charged to a
//! feasible packing, followed by a **completion** step — either the cheap
//! one-node-per-undominated rule (Theorems 3.1/1.1) or the randomized
//! sampling extension of Lemma 4.6 (Theorems 1.2/1.3).
//!
//! | API | Paper | Guarantee | Rounds |
//! |---|---|---|---|
//! | [`unweighted::solve`] | Thm 3.1 | (2α+1)(1+ε), unweighted | O(log(Δ/α)/ε) |
//! | [`weighted::solve`] | Thm 1.1 | (2α+1)(1+ε), weighted | O(log(Δ/α)/ε) |
//! | [`randomized::solve`] | Thm 1.2 | α + O(α/t) expected | O(t log Δ) |
//! | [`general::solve`] | Thm 1.3 | O(k·Δ^{2/k}) expected | O(k²) |
//! | [`trees::solve`] | Obs A.1 | 3, trees, unweighted | 1 |
//! | [`unknown_delta::solve`] | Rem 4.4 | (2α+1)(1+ε), Δ unknown | O(log Δ/ε) |
//! | [`unknown_alpha::solve`] | Rem 4.5 | (2α+1)(2+O(ε)), α unknown | O(log n·log α/ε)* |
//!
//! *Remark 4.5 claims `O(log n/ε)` using the Barenboim–Elkin orientation as
//! a black box; our α-oblivious peeling uses doubling estimates, which costs
//! an extra `log α` factor. See [`unknown_alpha`] for discussion.
//!
//! Every solver returns a [`DsResult`] carrying the dominating set, its
//! weight, the iteration count, and — for the primal-dual algorithms — a
//! [`PackingCertificate`]: a feasible dual solution whose total is a lower
//! bound on OPT (Lemma 2.1), so the *measured* approximation ratio is
//! certified instance by instance.
//!
//! Centralized simulations (fast, round-faithful) live in the modules above;
//! bit-faithful CONGEST message-passing versions of the headline algorithms
//! live in [`distributed`] and are tested to produce **identical outputs**
//! to the centralized ones.
//!
//! # Quickstart
//!
//! ```
//! use arbodom_core::{weighted, verify};
//! use arbodom_graph::generators;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let g = generators::forest_union(400, 2, &mut rng); // arboricity ≤ 2
//! let sol = weighted::solve(&g, &weighted::Config::new(2, 0.2)?)?;
//! assert!(verify::is_dominating_set(&g, &sol.in_ds));
//! let cert = sol.certificate.as_ref().unwrap();
//! // Certified ratio is within the theorem bound (2α+1)(1+ε) = 6.
//! assert!(sol.weight as f64 <= 6.0 * cert.lower_bound(), "ratio too large");
//! # Ok::<(), arbodom_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auto;
pub mod distributed;
mod error;
pub mod extend;
pub mod general;
pub mod partial;
pub mod randomized;
pub mod repair;
mod result;
pub mod trees;
pub mod unknown_alpha;
pub mod unknown_delta;
pub mod unweighted;
pub mod verify;
pub mod weighted;

pub use error::CoreError;
pub use result::DsResult;
pub use verify::PackingCertificate;

/// Convenience alias for results returned by the solvers.
pub type Result<T> = std::result::Result<T, CoreError>;
