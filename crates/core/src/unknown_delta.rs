//! Remark 4.4: Theorem 1.1 without global knowledge of Δ.
//!
//! Two changes against [`crate::weighted`]: packing values are initialized
//! with the *local* normalizer `x_v = τ_v / max_{u∈N⁺(v)} |N⁺(u)|` (one
//! round of degree exchange instead of knowing Δ), and because no node can
//! tell locally when the partial phase ends, **every** iteration starts
//! with an election step: any still-undominated node whose packing value
//! exceeds `λτ_v` adds a cheapest dominator from its closed neighborhood.
//! After `O(log Δ/ε)` iterations every node is dominated and the
//! `(2α+1)(1+ε)` analysis goes through unchanged.

use arbodom_graph::Graph;

use crate::{CoreError, DsResult, PackingCertificate, Result};

/// Parameters for Remark 4.4 (α is still known; Δ is not).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Config {
    /// Arboricity bound α ≥ 1 known to all nodes.
    pub alpha: usize,
    /// Approximation slack ε ∈ (0, 1).
    pub epsilon: f64,
}

impl Config {
    /// Validates `alpha ≥ 1` and `ε ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] outside those ranges.
    pub fn new(alpha: usize, epsilon: f64) -> Result<Self> {
        if alpha == 0 {
            return Err(CoreError::param("alpha", "must be at least 1"));
        }
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CoreError::param("epsilon", "must be in (0, 1)"));
        }
        Ok(Config { alpha, epsilon })
    }

    /// The threshold floor `λ = 1/((2α+1)(1+ε))`.
    pub fn lambda(&self) -> f64 {
        1.0 / ((2 * self.alpha + 1) as f64 * (1.0 + self.epsilon))
    }
}

/// Runs the unknown-Δ variant.
///
/// The implementation never reads `g.max_degree()` for algorithmic
/// decisions — only local degree information, exactly as a node could in
/// the CONGEST model (a safety cap on iterations uses `n`, which CONGEST
/// nodes know).
///
/// # Errors
///
/// Propagates parameter validation errors.
pub fn solve(g: &Graph, cfg: &Config) -> Result<DsResult> {
    let n = g.n();
    let one_plus_eps = 1.0 + cfg.epsilon;
    let lambda = cfg.lambda();
    let tau: Vec<u64> = g.nodes().map(|v| g.tau(v)).collect();
    // Local normalizer: max closed-neighborhood size over N⁺(v).
    let mut x: Vec<f64> = g
        .nodes()
        .map(|v| {
            let m = g
                .closed_neighbors(v)
                .map(|u| g.degree(u) + 1)
                .max()
                .expect("closed neighborhood nonempty");
            tau[v.index()] as f64 / m as f64
        })
        .collect();
    let mut in_s = vec![false; n];
    let mut in_s_prime = vec![false; n];
    let mut dominated = vec![false; n];
    let mut iterations = 0usize;
    // Safety cap: the loop provably ends once packing values cross λτ,
    // which takes at most log_{1+ε}((n+1)·(2α+1)(1+ε)) iterations.
    let cap = (((n + 1) as f64 / lambda).ln() / cfg.epsilon.ln_1p()).ceil() as usize + 3;

    while dominated.iter().any(|&d| !d) {
        assert!(
            iterations <= cap,
            "unknown-Δ loop exceeded its provable iteration cap"
        );
        // All decisions of an iteration are taken simultaneously from the
        // start-of-iteration state, exactly as the 3-round CONGEST
        // implementation in `distributed::unknown_delta` does.
        //
        // Extra step: elections by confident undominated nodes.
        let electors: Vec<_> = g
            .nodes()
            .filter(|&v| !dominated[v.index()] && x[v.index()] > lambda * tau[v.index()] as f64)
            .collect();
        // Lemma 4.1 joins. Nodes whose entire closed neighborhood is
        // already dominated skip joining: their membership cannot help
        // anyone, and a CONGEST node that halted after local stabilization
        // could not announce it (this only ever lowers the weight; the
        // paper's analysis charges joins against the packing, so dropping
        // useless joins preserves every bound).
        let joiners: Vec<_> = g
            .nodes()
            .filter(|&u| {
                if in_s[u.index()] {
                    return false;
                }
                if g.closed_neighbors(u).all(|v| dominated[v.index()]) {
                    return false;
                }
                let xu: f64 = g.closed_neighbors(u).map(|v| x[v.index()]).sum();
                xu >= g.weight(u) as f64 / one_plus_eps
            })
            .collect();
        for v in electors {
            let dominator = g.tau_argmin(v);
            in_s_prime[dominator.index()] = true;
            dominated[dominator.index()] = true;
            for &u in g.neighbors(dominator) {
                dominated[u.index()] = true;
            }
        }
        for &u in &joiners {
            in_s[u.index()] = true;
            dominated[u.index()] = true;
            for &w in g.neighbors(u) {
                dominated[w.index()] = true;
            }
        }
        for v in 0..n {
            if !dominated[v] {
                x[v] *= one_plus_eps;
            }
        }
        iterations += 1;
    }

    let mut in_ds = in_s;
    for v in 0..n {
        in_ds[v] = in_ds[v] || in_s_prime[v];
    }
    Ok(DsResult::from_flags(
        g,
        in_ds,
        iterations,
        Some(PackingCertificate::new(x)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use arbodom_graph::{generators, weights::WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation() {
        assert!(Config::new(0, 0.5).is_err());
        assert!(Config::new(1, 0.0).is_err());
        assert!(Config::new(2, 0.3).is_ok());
    }

    #[test]
    fn dominates_and_stays_feasible() {
        let mut rng = StdRng::seed_from_u64(131);
        for alpha in [1usize, 3] {
            let g = generators::forest_union(300, alpha, &mut rng);
            let g = WeightModel::Uniform { lo: 1, hi: 40 }.assign(&g, &mut rng);
            let cfg = Config::new(alpha, 0.25).unwrap();
            let sol = solve(&g, &cfg).unwrap();
            assert!(verify::is_dominating_set(&g, &sol.in_ds), "α={alpha}");
            let cert = sol.certificate.as_ref().unwrap();
            assert!(cert.is_feasible(&g, 1e-9), "α={alpha}");
        }
    }

    #[test]
    fn ratio_matches_known_delta_guarantee() {
        let mut rng = StdRng::seed_from_u64(132);
        let alpha = 2usize;
        let g = generators::forest_union(400, alpha, &mut rng);
        let g = WeightModel::Exponential { max_exp: 6 }.assign(&g, &mut rng);
        let cfg = Config::new(alpha, 0.2).unwrap();
        let sol = solve(&g, &cfg).unwrap();
        let bound = (2 * alpha + 1) as f64 * 1.2;
        let ratio = sol.certified_ratio().unwrap();
        assert!(
            ratio <= bound * (1.0 + 1e-9),
            "certified ratio {ratio} above (2α+1)(1+ε) = {bound}"
        );
    }

    #[test]
    fn iteration_count_near_known_delta_version() {
        let mut rng = StdRng::seed_from_u64(133);
        let alpha = 2usize;
        let g = generators::preferential_attachment(1000, alpha, &mut rng);
        let unknown = solve(&g, &Config::new(alpha, 0.3).unwrap()).unwrap();
        let known =
            crate::weighted::solve(&g, &crate::weighted::Config::new(alpha, 0.3).unwrap()).unwrap();
        // Same Θ(log Δ / ε) scaling; allow a generous constant.
        assert!(
            unknown.iterations <= 3 * known.iterations + 10,
            "unknown-Δ used {} iterations vs {} known-Δ",
            unknown.iterations,
            known.iterations
        );
    }

    #[test]
    fn handles_edge_cases() {
        let g = arbodom_graph::Graph::from_edges(1, []).unwrap();
        let sol = solve(&g, &Config::new(1, 0.5).unwrap()).unwrap();
        assert!(verify::is_dominating_set(&g, &sol.in_ds));
        let g = arbodom_graph::Graph::from_edges(2, [(0, 1)]).unwrap();
        let sol = solve(&g, &Config::new(1, 0.5).unwrap()).unwrap();
        assert!(verify::is_dominating_set(&g, &sol.in_ds));
    }
}
