//! `MeterMode::Strict` round-trip conformance for the protocol wire
//! format: every [`ProtocolMsg`] variant (including value extremes) must
//! satisfy the full [`Wire`] contract — exact round-trip, honest
//! `encoded_bits`, and truncation safety — and corrupted buffers must be
//! rejected, never mis-decoded. A live Strict run over every program
//! then proves the simulator enforces the same contract end to end.

use arbodom_congest::{assert_wire_conformance, MeterMode, RunOptions, Wire, WireError};
use arbodom_core::distributed::{self, ProtocolMsg};
use arbodom_core::{randomized, unknown_delta, weighted};
use arbodom_graph::generators;
use bytes::BytesMut;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every variant of the protocol, with boundary payloads where the
/// variant carries one.
fn all_variants() -> Vec<ProtocolMsg> {
    let extremes = [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX];
    let mut msgs = vec![
        ProtocolMsg::Joined,
        ProtocolMsg::Dominated,
        ProtocolMsg::Elect,
    ];
    for v in extremes {
        msgs.push(ProtocolMsg::Weight(v));
        msgs.push(ProtocolMsg::Tau(v));
        msgs.push(ProtocolMsg::Degree(v));
    }
    msgs
}

#[test]
fn every_variant_satisfies_the_wire_contract() {
    for msg in all_variants() {
        assert_wire_conformance(&msg);
    }
}

#[test]
fn truncated_buffers_error_at_every_cut() {
    // assert_wire_conformance already checks prefixes of each encoding;
    // here we additionally pin the error *kind*: a cut buffer is
    // Truncated (or Invalid for a multi-byte varint cut that exposes a
    // dangling continuation bit), never a silent success.
    for msg in all_variants() {
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            match ProtocolMsg::decode(&mut slice) {
                Err(WireError::Truncated) | Err(WireError::Invalid(_)) => {}
                Ok(got) => panic!("{msg:?} cut at {cut} decoded as {got:?}"),
                Err(other) => panic!("{msg:?} cut at {cut}: unexpected error {other}"),
            }
        }
    }
}

#[test]
fn corrupted_buffers_are_rejected() {
    // Unknown tag byte.
    for bad_tag in [6u8, 7, 99, 255] {
        let bytes = [bad_tag];
        let mut slice = &bytes[..];
        assert!(
            matches!(ProtocolMsg::decode(&mut slice), Err(WireError::Invalid(_))),
            "tag {bad_tag} must be rejected"
        );
    }
    // Valid tag followed by an over-long varint (11 continuation bytes).
    let mut bytes = vec![0u8]; // TAG_WEIGHT
    bytes.extend_from_slice(&[0xff; 11]);
    let mut slice = &bytes[..];
    assert!(matches!(
        ProtocolMsg::decode(&mut slice),
        Err(WireError::Invalid(_))
    ));
    // Valid tag with a varint cut mid-continuation.
    let bytes = [0u8, 0x80];
    let mut slice = &bytes[..];
    assert!(matches!(
        ProtocolMsg::decode(&mut slice),
        Err(WireError::Truncated)
    ));
}

/// Strict runs of every node program: each message type crosses the wire
/// as real bytes and is decoded back, so a protocol regression in any
/// variant fails here.
#[test]
fn strict_runs_cover_every_program_and_message_type() {
    let strict = RunOptions {
        meter: MeterMode::Strict,
        ..RunOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(42);
    let g = generators::forest_union(150, 2, &mut rng);

    // Weight/Tau/Joined/Dominated/Elect flow through Theorem 1.1.
    let wcfg = weighted::Config::new(2, 0.3).unwrap();
    let (sol, t) = distributed::run_weighted(&g, &wcfg, 0, &strict).unwrap();
    assert!(arbodom_core::verify::is_dominating_set(&g, &sol.in_ds));
    assert!(t.is_congest_compliant());

    // The randomized program reuses the same events under sampling.
    let rcfg = randomized::Config::new(2, 2, 7).unwrap();
    let (sol, _) = distributed::run_randomized(&g, &rcfg, &strict).unwrap();
    assert!(arbodom_core::verify::is_dominating_set(&g, &sol.in_ds));

    // Degree flows through the tree program's single exchange…
    let tree = generators::random_tree(120, &mut rng);
    let (sol, _) = distributed::run_trees(&tree, &strict).unwrap();
    assert!(arbodom_core::verify::is_dominating_set(&tree, &sol.in_ds));

    // …and through the unknown-Δ program's normalizer exchange.
    let ucfg = unknown_delta::Config::new(2, 0.3).unwrap();
    let (sol, _) = distributed::run_unknown_delta(&g, &ucfg, 0, &strict).unwrap();
    assert!(arbodom_core::verify::is_dominating_set(&g, &sol.in_ds));
}
