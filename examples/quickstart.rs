//! Quickstart: run the paper's headline algorithm on a bounded-arboricity
//! graph and inspect the certificate.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use arbodom::core::{verify, weighted};
use arbodom::graph::{arboricity, generators};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // A graph with arboricity ≤ 3 by construction: three random forests.
    let alpha = 3;
    let g = generators::forest_union(10_000, alpha, &mut rng);
    let (lo, hi) = arboricity::arboricity_bounds(&g);
    println!(
        "graph: n = {}, m = {}, Δ = {}",
        g.n(),
        g.m(),
        g.max_degree()
    );
    println!("arboricity: construction ≤ {alpha}, certified bounds [{lo}, {hi}]");

    // Theorem 1.1: deterministic (2α+1)(1+ε)-approximate weighted MDS in
    // O(log(Δ/α)/ε) rounds.
    let epsilon = 0.2;
    let cfg = weighted::Config::new(alpha, epsilon)?;
    let sol = weighted::solve(&g, &cfg)?;
    assert!(verify::is_dominating_set(&g, &sol.in_ds));

    println!(
        "\nTheorem 1.1 (ε = {epsilon}): |DS| = {}, weight = {}, iterations = {}",
        sol.size, sol.weight, sol.iterations
    );

    // Every run carries a dual certificate (Lemma 2.1): Σx_v ≤ OPT, so the
    // certified ratio below is an upper bound on the true ratio.
    let cert = sol.certificate.as_ref().expect("primal-dual run");
    assert!(cert.is_feasible(&g, 1e-9));
    println!(
        "certificate: Σx = {:.2} ≤ OPT, certified ratio = {:.3} (theorem bound {:.2})",
        cert.lower_bound(),
        sol.certified_ratio().unwrap(),
        cfg.guarantee()
    );
    Ok(())
}
