//! Weighted facility placement with wildly heterogeneous costs.
//!
//! The paper's Theorem 1.1 is (to its knowledge) the first distributed
//! algorithm for *weighted* MDS in bounded-arboricity graphs. This example
//! shows why weights change the game: with power-of-two facility costs, an
//! unweighted-minded algorithm that buys big hubs gets badly burned, while
//! the primal-dual engine prices nodes through τ values. It also
//! demonstrates the unknown-Δ (Remark 4.4) and unknown-α (Remark 4.5)
//! variants on the same instance.
//!
//! ```text
//! cargo run --release --example weighted_facility
//! ```

use arbodom::baselines::{greedy, parallel_greedy};
use arbodom::core::{unknown_alpha, unknown_delta, verify, weighted};
use arbodom::graph::{generators, weights::WeightModel};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let alpha = 2;
    let g = generators::forest_union(20_000, alpha, &mut rng);
    // Costs 2^0 .. 2^12: four orders of magnitude.
    let g = WeightModel::Exponential { max_exp: 12 }.assign(&g, &mut rng);
    println!(
        "facility graph: n = {}, m = {}, Δ = {}, total cost {}",
        g.n(),
        g.m(),
        g.max_degree(),
        g.weights_vec().iter().sum::<u64>()
    );

    let lb = arbodom::baselines::lp::maximal_packing(&g).lower_bound();
    println!("packing lower bound on OPT: {lb:.0}\n");
    println!("{:<34} {:>12} {:>12}", "algorithm", "cost", "vs LB");
    let report = |name: &str, cost: u64| {
        println!("{:<34} {:>12} {:>11.2}x", name, cost, cost as f64 / lb);
    };

    let det = weighted::solve(&g, &weighted::Config::new(alpha, 0.2)?)?;
    assert!(verify::is_dominating_set(&g, &det.in_ds));
    report("Thm 1.1 (knows Δ and α)", det.weight);

    let ud = unknown_delta::solve(&g, &unknown_delta::Config::new(alpha, 0.2)?)?;
    assert!(verify::is_dominating_set(&g, &ud.in_ds));
    report("Rem 4.4 (Δ unknown)", ud.weight);

    let ua = unknown_alpha::solve(&g, &unknown_alpha::Config::new(0.2)?)?;
    assert!(verify::is_dominating_set(&g, &ua.in_ds));
    report("Rem 4.5 (α unknown too)", ua.weight);

    let seq = greedy::solve(&g);
    report("weighted greedy (sequential)", seq.weight);

    // Parallel greedy ignores weights — watch it burn money on hubs.
    let par = parallel_greedy::solve(&g);
    report("coverage-greedy (weight-blind)", par.weight);

    println!(
        "\niterations: Thm 1.1 = {}, Rem 4.4 = {}, Rem 4.5 = {} (incl. peeling)",
        det.iterations, ud.iterations, ua.iterations
    );
    Ok(())
}
