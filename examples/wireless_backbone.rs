//! Clusterhead election in an ad-hoc wireless mesh — run as a *real*
//! message-passing computation.
//!
//! Dominating sets are the classic tool for clustering and routing
//! backbones in ad-hoc networks: every station is either a clusterhead or
//! hears one directly. This example models a city-block mesh (a torus
//! grid, planar ⇒ arboricity ≤ 3... here ≤ 2), weights stations by
//! *battery cost*, and runs the Theorem 1.1 node program through the
//! CONGEST simulator — counting every round and metering every message
//! byte the stations exchange.
//!
//! ```text
//! cargo run --release --example wireless_backbone
//! ```

use arbodom::congest::RunOptions;
use arbodom::core::distributed::run_weighted;
use arbodom::core::{verify, weighted};
use arbodom::graph::{weights::WeightModel, Graph};
use rand::SeedableRng;

/// A 60×60 torus mesh of stations plus 36 high-power gateways, each wired
/// to the 10×10 block beneath it. The torus is two pseudoforests (row
/// cycles + column cycles) and the gateway stars add one forest, so the
/// arboricity is at most 3 while gateways have degree 100 — the hub-heavy
/// regime the paper targets (footnote 2 covers pseudoforest
/// decompositions).
fn build_city_mesh() -> Graph {
    let (rows, cols) = (60usize, 60usize);
    let n_grid = rows * cols;
    let gateways = 36usize;
    let mut b = Graph::builder(n_grid + gateways);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge_u32(id(r, c), id(r, (c + 1) % cols)).unwrap();
            b.add_edge_u32(id(r, c), id((r + 1) % rows, c)).unwrap();
        }
    }
    for gr in 0..6 {
        for gc in 0..6 {
            let g_id = (n_grid + gr * 6 + gc) as u32;
            for r in gr * 10..(gr + 1) * 10 {
                for c in gc * 10..(gc + 1) * 10 {
                    b.add_edge_u32(g_id, id(r, c)).unwrap();
                }
            }
        }
    }
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);

    let mesh = build_city_mesh();
    // Battery cost 1..=8 per station; gateways are mains-powered (cheap).
    let mut mesh = WeightModel::Uniform { lo: 1, hi: 8 }.assign(&mesh, &mut rng);
    {
        let mut w = mesh.weights_vec();
        for gw in &mut w[3600..3636] {
            *gw = 2;
        }
        mesh = mesh.with_weights(w)?;
    }
    let alpha = 3; // 2 pseudoforests (torus) + 1 forest (gateway stars)
    println!(
        "mesh: {} stations, {} links, Δ = {} (gateways), α ≤ {alpha}",
        mesh.n(),
        mesh.m(),
        mesh.max_degree()
    );

    let cfg = weighted::Config::new(alpha, 0.25)?;
    let (sol, telemetry) = run_weighted(&mesh, &cfg, 99, &RunOptions::default())?;
    assert!(verify::is_dominating_set(&mesh, &sol.in_ds));

    println!(
        "\nbackbone: {} clusterheads, total battery cost {}",
        sol.size, sol.weight
    );
    println!(
        "certified ratio vs optimal: {:.3} (theorem bound {:.2})",
        sol.certified_ratio().unwrap(),
        cfg.guarantee()
    );
    println!("\n--- CONGEST telemetry (actual messages, not estimates) ---");
    println!("rounds:            {}", telemetry.rounds);
    println!("messages:          {}", telemetry.total_messages);
    println!(
        "traffic:           {} bits total, avg {:.1} bits/message, max {} bits",
        telemetry.total_bits,
        telemetry.avg_message_bits(),
        telemetry.max_message_bits
    );
    println!(
        "bandwidth budget:  {} bits/message — violations: {}",
        telemetry.bandwidth_budget_bits, telemetry.budget_violations
    );
    assert!(telemetry.is_congest_compliant());

    // The steady-state rounds carry single-byte events; only the two setup
    // rounds move O(log n)-bit weights. That is what makes the paper's
    // algorithm practical on radios with tiny frames.
    Ok(())
}
