//! Influence-hub selection in a social network.
//!
//! The paper's introduction motivates bounded arboricity with real-world
//! graphs: the web and social networks are sparse "everywhere" even though
//! they contain huge hubs. This example builds a preferential-attachment
//! network (heavy-tailed degrees, arboricity ≤ m-per-node), interprets
//! dominating sets as "every user is within one hop of a seeded
//! influencer", and compares the paper's algorithms against baselines.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use arbodom::baselines::{greedy, parallel_greedy};
use arbodom::core::{randomized, verify, weighted};
use arbodom::graph::generators;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let alpha = 4; // attachment density ⇒ arboricity ≤ 4
    let g = generators::preferential_attachment(50_000, alpha, &mut rng);
    println!(
        "social graph: n = {}, m = {}, Δ = {} (heavy tail)",
        g.n(),
        g.m(),
        g.max_degree()
    );

    // Independent lower bound for context.
    let lb = arbodom::baselines::lp::maximal_packing(&g).lower_bound();
    println!("packing lower bound on OPT: {lb:.0}\n");
    println!(
        "{:<28} {:>8} {:>12} {:>10}",
        "algorithm", "size", "iterations", "vs LB"
    );

    let report = |name: &str, size: usize, iters: usize| {
        println!(
            "{:<28} {:>8} {:>12} {:>9.2}x",
            name,
            size,
            iters,
            size as f64 / lb
        );
    };

    let det = weighted::solve(&g, &weighted::Config::new(alpha, 0.2)?)?;
    assert!(verify::is_dominating_set(&g, &det.in_ds));
    report("Thm 1.1 (det, ε=0.2)", det.size, det.iterations);

    let rnd = randomized::solve(&g, &randomized::Config::new(alpha, 2, 1)?)?;
    assert!(verify::is_dominating_set(&g, &rnd.in_ds));
    report("Thm 1.2 (rand, t=2)", rnd.size, rnd.iterations);

    let seq = greedy::solve(&g);
    report("greedy (sequential!)", seq.size, seq.iterations);

    let par = parallel_greedy::solve(&g);
    report("parallel greedy", par.size, par.iterations);

    println!(
        "\nNote: greedy's iteration count is sequential picks — it cannot be\n\
         distributed; the paper's algorithms pay a small quality premium for\n\
         running in O(log Δ) CONGEST rounds."
    );
    Ok(())
}
