//! A guided tour of the Theorem 1.4 lower-bound construction.
//!
//! Reproduces the paper's Figure 1 programmatically: builds `H(G)` for the
//! `K₄` base drawn in the figure, verifies every structural claim of
//! Section 5 (arboricity-2 witness, node/edge counts, equation (2)), then
//! exhibits the *locality wall* — on `H`, algorithms with a small round
//! budget cannot approximate well, exactly as the theorem predicts.
//!
//! ```text
//! cargo run --release --example lower_bound_tour
//! ```

use arbodom::graph::generators;
use arbodom::lowerbound::construction::build_h_paper;
use arbodom::lowerbound::hopcroft_karp::{bipartition, hopcroft_karp};
use arbodom::lowerbound::kmw_like::kmw_like;
use arbodom::lowerbound::locality::locality_curve;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: Figure 1's example, G = K4. ----
    let k4 = generators::complete(4);
    let h = build_h_paper(&k4);
    println!("Figure 1 reproduction: H(K4) with Δ² = {} copies", h.copies);
    println!(
        "  H: {} nodes = Δ²(n+m)+n, {} edges = Δ²(2m+n)",
        h.graph.n(),
        h.graph.m()
    );
    h.verify_structure().map_err(std::io::Error::other)?;
    let orientation = h.arboricity2_orientation();
    println!(
        "  arboricity-2 witness: explicit orientation with max out-degree {}",
        orientation.max_out_degree()
    );
    println!(
        "  hub degree = {} = Δ² ✓\n",
        h.graph.degree(h.hub_node(0.into()))
    );

    // ---- Part 2: a KMW-flavored hard base graph, with exact MVC. ----
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let base = kmw_like(3, 3, &mut rng);
    let g = &base.graph;
    let side = bipartition(g).expect("layered graphs are bipartite");
    let mvc = hopcroft_karp(g, &side);
    println!(
        "hard base G: n = {}, m = {}, Δ = {}; exact MVC (Kőnig) = {}",
        g.n(),
        g.m(),
        g.max_degree(),
        mvc.size
    );
    // Equation (2): OPT_H ≤ Δ²·MVC + n — exhibited by an explicit set.
    let h = build_h_paper(g);
    let ds = h.hubs_plus_cover(&mvc.min_vertex_cover);
    assert!(arbodom::core::verify::is_dominating_set(&h.graph, &ds));
    let ds_size = ds.iter().filter(|&&b| b).count();
    println!(
        "equation (2): explicit dominating set of H with {} nodes ≤ Δ²·MVC + n = {}",
        ds_size,
        h.copies * mvc.size + g.n()
    );

    // ---- Part 3: the locality wall. ----
    println!("\nlocality wall on H (certified ratio of an r-round algorithm):");
    println!("{:>8} {:>10} {:>8}", "rounds", "|DS|", "ratio");
    let curve = locality_curve(&h.graph, 0.3, 24);
    for p in curve.iter().step_by(3) {
        println!("{:>8} {:>10} {:>7.2}x", p.rounds, p.size, p.ratio);
    }
    let (first, last) = (curve.first().unwrap(), curve.last().unwrap());
    println!(
        "\nratio improves {:.1}x between r = 0 and r = {} — few-round algorithms\n\
         hit the Ω(log Δ/log log Δ) wall of Theorem 1.4 on arboricity-2 graphs.",
        first.ratio / last.ratio,
        last.rounds
    );
    Ok(())
}
